package core

import (
	"math"

	"olgapro/internal/ecdf"
	"olgapro/internal/mat"
	"olgapro/internal/rtree"
)

// evalScratch is the persistent per-evaluator workspace behind the
// near-zero-allocation evaluation hot path: every buffer whose size depends
// only on the Monte-Carlo sample count m, the training-set size n, or the
// local-subset size l lives here and is reused across Eval calls. An
// Evaluator is documented as single-goroutine, which is what makes one
// workspace per evaluator sound; the predictBuf pool additionally gives each
// predictInto worker goroutine its own buffers.
type evalScratch struct {
	sampleData []float64   // flat backing array for Eval's m×d sample matrix
	samples    [][]float64 // row headers into sampleData

	means, vars []float64 // per-sample posterior moments

	lc localCtx // the per-tuple local inference context, rebuilt in place

	env     envScratch        // envelope buffers for the error-bound loop
	tuneEnv envScratch        // separate buffers for pickOptimalGreedy's trials
	bound   ecdf.BoundScratch // DiscrepancyBound work buffers

	sel  markSet // selectLocal membership (per radius step)
	skip markSet // per-tuple skip set for tuning picks

	idBuf []int       // selectLocal id staging (copied into lc by buildLocal)
	gram  *mat.Matrix // local Gram staging for buildLocal

	box          boxScratch // sample bounding-box and sub-box buffers
	domLo, domHi []float64  // domainDiameter extent buffers

	pbufs []predictBuf // per-worker inference buffers; index 0 is sequential

	tuneMeans, tuneVars []float64 // pickOptimalGreedy evaluation-subset moments
	tuneY               []float64 // pickOptimalGreedy local observations

	// rank-1 greedy fast-path buffers (greedyBestRank1).
	tuneCands  []int       // candidate pool, by descending variance
	tuneAlpha  []float64   // local-solve weights α_L = K_L⁻¹ y_L
	tuneMHat   []float64   // local-solve means at the evaluation subset
	tuneEvalXs [][]float64 // evaluation-subset sample rows
	tuneCross  *mat.Matrix // eval×l cross-covariance rows K_eval
	tuneK      []float64   // candidate cross-vector k_c
	tuneU      []float64   // candidate solve u_c = K_L⁻¹ k_c
	tuneCC     []float64   // candidate↔eval kernel values k(x_c, x_j)
}

// boxScratch owns the per-tuple sample bounding box and the §5.1 sub-box
// partition. Both are recomputed every tuple from scratch-backed slices, so
// the steady state pays no allocation for them; the returned rects alias the
// scratch and are valid only until the next bounding/sub call.
type boxScratch struct {
	lo, hi []float64          // overall bounding-box backing
	cells  [1 << 3]rtree.Rect // per-cell tight boxes (d ≤ 3), backings reused
	used   [1 << 3]bool
	out    []rtree.Rect // returned sub-box headers
}

// bounding computes the tight bounding box of samples into the reused
// backing arrays.
func (b *boxScratch) bounding(samples [][]float64) rtree.Rect {
	b.lo = append(b.lo[:0], samples[0]...)
	b.hi = append(b.hi[:0], samples[0]...)
	for _, p := range samples[1:] {
		for i, v := range p {
			if v < b.lo[i] {
				b.lo[i] = v
			}
			if v > b.hi[i] {
				b.hi[i] = v
			}
		}
	}
	return rtree.Rect{Lo: b.lo, Hi: b.hi}
}

// sub partitions samples into up-to-2^d sub-boxes split at the overall box
// center and returns the tight bounding box of each non-empty cell — the
// refinement the paper notes makes γ tighter. For d > 3 (2^d cells stop
// paying off) or few samples a single box is used. box must be the bounding
// box of samples.
func (b *boxScratch) sub(samples [][]float64, box rtree.Rect) []rtree.Rect {
	d := len(samples[0])
	out := b.out[:0]
	if d > 3 || len(samples) < 16 {
		b.out = append(out, box)
		return b.out
	}
	for k := range b.used {
		b.used[k] = false
	}
	for _, s := range samples {
		key := 0
		for j := 0; j < d; j++ {
			if s[j] > (box.Lo[j]+box.Hi[j])/2 {
				key |= 1 << j
			}
		}
		c := &b.cells[key]
		if !b.used[key] {
			b.used[key] = true
			c.Lo = append(c.Lo[:0], s...)
			c.Hi = append(c.Hi[:0], s...)
		} else {
			for j, v := range s {
				if v < c.Lo[j] {
					c.Lo[j] = v
				}
				if v > c.Hi[j] {
					c.Hi[j] = v
				}
			}
		}
	}
	for k := 0; k < 1<<d; k++ {
		if b.used[k] {
			out = append(out, b.cells[k])
		}
	}
	b.out = out
	return out
}

// resizeRows grows *buf to n row headers, reusing capacity.
func resizeRows(buf *[][]float64, n int) [][]float64 {
	if cap(*buf) < n {
		*buf = make([][]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// buf returns worker buffer w, growing the pool as needed.
func (s *evalScratch) buf(w int) *predictBuf {
	s.growBufs(w + 1)
	return &s.pbufs[w]
}

// growBufs ensures the pool holds at least p buffers. It must be called
// before worker goroutines take pointers into the pool, since growth moves
// the backing array.
func (s *evalScratch) growBufs(p int) {
	for len(s.pbufs) < p {
		s.pbufs = append(s.pbufs, predictBuf{})
	}
}

// resizeFloats grows *buf to length n, reusing capacity, and returns it.
func resizeFloats(buf *[]float64, n int) []float64 {
	*buf = resizeFloatsVal(*buf, n)
	return *buf
}

// resizeFloatsVal grows buf to length n, reusing capacity, and returns it.
func resizeFloatsVal(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// markSet is an epoch-stamped integer set over [0, n): reset is O(1) — one
// epoch bump — instead of the O(n) rebuild of the map[int]bool it replaces,
// and membership is a single slice load.
type markSet struct {
	marks []int32
	epoch int32
	count int
}

// reset empties the set and sizes it for ids in [0, n).
func (m *markSet) reset(n int) {
	if cap(m.marks) < n {
		grown := make([]int32, n)
		copy(grown, m.marks)
		m.marks = grown
	}
	m.marks = m.marks[:n]
	if m.epoch == math.MaxInt32 {
		// Epoch wrap: clear stamps so stale entries cannot collide.
		for i := range m.marks {
			m.marks[i] = 0
		}
		m.epoch = 0
	}
	m.epoch++
	m.count = 0
}

// add inserts id (idempotently).
func (m *markSet) add(id int) {
	if m.marks[id] != m.epoch {
		m.marks[id] = m.epoch
		m.count++
	}
}

// has reports membership.
func (m *markSet) has(id int) bool { return m.marks[id] == m.epoch }

// size returns the number of distinct ids added since the last reset.
func (m *markSet) size() int { return m.count }

// envScratch owns the three sorted sample buffers an envelope is built from,
// plus one sort permutation per support. The permutations persist across
// envelopeOf calls: within a tuple's tuning loop consecutive calls see means
// and variances that moved only slightly (one rank-1 model update), so
// writing the new values in the previous sorted order yields a handful of
// ascending runs and the adaptive merge below restores order in ~O(m) —
// the steady-state loop performs no comparison sort at all, where each call
// formerly paid three O(m log m) slices.Sort passes.
type envScratch struct {
	mean, lower, upper  []float64
	permM, permL, permU []int
	permN               int       // sample count the permutations cover
	mergeV              []float64 // natural-merge value scratch
	mergeP              []int     // natural-merge permutation scratch

	// The three ECDF structs the returned envelope points into. Reusing
	// them (ecdf.SetSorted) instead of allocating fresh ones per call is
	// what makes the greedy trial loop — one envelopeOf per candidate —
	// allocation-free in the steady state; it also means an envelope from a
	// previous call is repointed, which the aliasing contract (valid only
	// until the next envelopeOf on the same scratch) already forbade using.
	meanE, lowerE, upperE ecdf.ECDF
}

// syncPerms sizes the three permutations to n samples. A grown range is
// appended as identity — during chunked filtering the first permN samples
// keep their values exactly, so the previous order stays a sorted prefix run
// and only the new suffix needs merging. A shrunk range (new tuple with a
// smaller budget) resets to identity.
func (s *envScratch) syncPerms(n int) {
	if s.permN > n {
		s.permN = 0
		s.permM, s.permL, s.permU = s.permM[:0], s.permL[:0], s.permU[:0]
	}
	for i := s.permN; i < n; i++ {
		s.permM = append(s.permM, i)
		s.permL = append(s.permL, i)
		s.permU = append(s.permU, i)
	}
	s.permN = n
}

// envelopeOf builds the three empirical CDFs Ŷ′, Y′_S, Y′_L from the
// inferred means and variances of the first n samples, reusing the scratch
// buffers. The returned envelope aliases them: it is valid only until the
// next envelopeOf call on the same scratch, and must be deep-copied (see
// ownedEnvelope) before escaping into an Output.
func (s *envScratch) envelopeOf(means, vars []float64, zAlpha float64, n int) ecdf.Envelope {
	mean := resizeFloats(&s.mean, n)
	lower := resizeFloats(&s.lower, n)
	upper := resizeFloats(&s.upper, n)
	if n == 0 {
		return ecdf.Envelope{
			Mean:  s.meanE.SetSorted(mean),
			Lower: s.lowerE.SetSorted(lower),
			Upper: s.upperE.SetSorted(upper),
		}
	}
	s.syncPerms(n)
	for k, i := range s.permM[:n] {
		mean[k] = means[i]
	}
	sortWithPerm(mean, s.permM[:n], &s.mergeV, &s.mergeP)
	// Homoscedastic fast path: with one shared variance the lower and upper
	// supports are constant shifts of the sorted mean support, so they need
	// no ordering work of their own (ecdf.FromSortedShifted).
	uniform := true
	for i := 1; i < n; i++ {
		if vars[i] != vars[0] {
			uniform = false
			break
		}
	}
	if uniform {
		off := zAlpha * math.Sqrt(vars[0])
		return ecdf.Envelope{
			Mean:  s.meanE.SetSorted(mean),
			Lower: s.lowerE.SetSortedShifted(lower, mean, -off),
			Upper: s.upperE.SetSortedShifted(upper, mean, off),
		}
	}
	for k, i := range s.permL[:n] {
		lower[k] = means[i] - zAlpha*math.Sqrt(vars[i])
	}
	sortWithPerm(lower, s.permL[:n], &s.mergeV, &s.mergeP)
	for k, i := range s.permU[:n] {
		upper[k] = means[i] + zAlpha*math.Sqrt(vars[i])
	}
	sortWithPerm(upper, s.permU[:n], &s.mergeV, &s.mergeP)
	return ecdf.Envelope{
		Mean:  s.meanE.SetSorted(mean),
		Lower: s.lowerE.SetSorted(lower),
		Upper: s.upperE.SetSorted(upper),
	}
}

// sortWithPerm sorts vals ascending while applying the same reordering to
// perm, using a bottom-up natural merge: maximal ascending runs are detected
// and adjacent runs merged until one remains, ping-ponging through the
// scratch buffers. Already-sorted input is a single O(n) scan with zero
// writes; r runs cost O(n log r); fully random input degrades gracefully to
// an ordinary O(n log n) merge sort. This adaptivity is what the persistent
// envelope permutations exploit.
func sortWithPerm(vals []float64, perm []int, mergeV *[]float64, mergeP *[]int) {
	n := len(vals)
	if n < 2 {
		return
	}
	sorted := true
	for i := 1; i < n; i++ {
		if fless(vals[i], vals[i-1]) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	sv := resizeFloats(mergeV, n)
	sp := resizeInts(mergeP, n)
	srcV, srcP := vals, perm
	dstV, dstP := sv, sp
	for {
		runs := 0
		out := 0
		i := 0
		for i < n {
			// First run [i, j).
			j := i + 1
			for j < n && !fless(srcV[j], srcV[j-1]) {
				j++
			}
			if j == n {
				copy(dstV[out:], srcV[i:])
				copy(dstP[out:], srcP[i:])
				runs++
				break
			}
			// Second run [j, k); merge the pair into dst.
			k := j + 1
			for k < n && !fless(srcV[k], srcV[k-1]) {
				k++
			}
			a, b := i, j
			for a < j && b < k {
				if fless(srcV[b], srcV[a]) {
					dstV[out], dstP[out] = srcV[b], srcP[b]
					b++
				} else {
					dstV[out], dstP[out] = srcV[a], srcP[a]
					a++
				}
				out++
			}
			for ; a < j; a++ {
				dstV[out], dstP[out] = srcV[a], srcP[a]
				out++
			}
			for ; b < k; b++ {
				dstV[out], dstP[out] = srcV[b], srcP[b]
				out++
			}
			runs++
			i = k
		}
		if runs <= 1 {
			if &dstV[0] != &vals[0] {
				copy(vals, dstV)
				copy(perm, dstP)
			}
			return
		}
		srcV, srcP, dstV, dstP = dstV, dstP, srcV, srcP
	}
}

// fless is the NaN-first strict weak order slices.Sort applies to float64 —
// a *total* order, which is what guarantees the natural merge's run count
// shrinks every pass (plain < stalls on NaN: it breaks every run containing
// one and the merge loops forever).
func fless(a, b float64) bool { return a < b || (a != a && b == b) }

// resizeInts grows *buf to length n, reusing capacity, and returns it.
func resizeInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// ownedEnvelope deep-copies a scratch-backed envelope so it can outlive the
// evaluator's workspace — the one O(m) allocation a non-filtered tuple pays,
// for the distribution it hands back to the caller.
func ownedEnvelope(env ecdf.Envelope) ecdf.Envelope {
	return ecdf.Envelope{
		Mean:  ecdf.FromSorted(mat.CloneVec(env.Mean.Values())),
		Lower: ecdf.FromSorted(mat.CloneVec(env.Lower.Values())),
		Upper: ecdf.FromSorted(mat.CloneVec(env.Upper.Values())),
	}
}
