package core

import (
	"math/rand"
	"testing"

	"olgapro/internal/dist"
	"olgapro/internal/kernel"
	"olgapro/internal/udf"
)

func cloneTestUDF() udf.Func {
	return udf.FuncOf{D: 2, F: func(x []float64) float64 {
		return x[0]*x[0] + 0.5*x[1]
	}}
}

func warmedEvaluator(t *testing.T) *Evaluator {
	t.Helper()
	ev, err := NewEvaluator(cloneTestUDF(), Config{
		Kernel:         kernel.NewSqExp(1, 0.5),
		SampleOverride: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	in, err := dist.IsoGaussianVec([]float64{0.5, 0.5}, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := ev.Eval(in, rng); err != nil {
			t.Fatal(err)
		}
	}
	return ev
}

func TestCloneFrozenRequiresWarmup(t *testing.T) {
	ev, err := NewEvaluator(cloneTestUDF(), Config{Kernel: kernel.NewSqExp(1, 0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.CloneFrozen(); err == nil {
		t.Fatal("cold evaluator must be rejected: its bootstrap would mutate the frozen model")
	}
}

func TestCloneFrozenIsPureAndIndependent(t *testing.T) {
	ev := warmedEvaluator(t)
	srcPoints := ev.GP().Len()

	c1, err := ev.CloneFrozen()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ev.CloneFrozen()
	if err != nil {
		t.Fatal(err)
	}
	if !c1.Frozen() || ev.Frozen() {
		t.Fatal("Frozen flags wrong")
	}
	if c1.GP().Len() != srcPoints {
		t.Fatalf("clone has %d points, source %d", c1.GP().Len(), srcPoints)
	}

	in, err := dist.IsoGaussianVec([]float64{0.55, 0.45}, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	// Identical seeds → bit-identical outputs from two sibling clones, even
	// with unequal interleaved histories (c1 evaluates extra inputs first).
	if _, err := c1.Eval(in, rand.New(rand.NewSource(77))); err != nil {
		t.Fatal(err)
	}
	o1, err := c1.Eval(in, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	o2, err := c2.Eval(in, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := o1.Dist.Values(), o2.Dist.Values()
	if len(v1) != len(v2) {
		t.Fatalf("sample counts differ: %d vs %d", len(v1), len(v2))
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("sample %d differs: %v vs %v (clone Eval is not pure)", i, v1[i], v2[i])
		}
	}
	if o1.Engine != EngineGP {
		t.Errorf("output engine = %v, want GP", o1.Engine)
	}

	// Frozen means frozen: no UDF calls, no training points, ever.
	st := c1.Stats()
	if st.UDFCalls != 0 || st.PointsAdded != 0 || st.Retrainings != 0 {
		t.Fatalf("frozen clone mutated its model: %+v", st)
	}
	if c1.GP().Len() != srcPoints || ev.GP().Len() != srcPoints {
		t.Fatal("training-set sizes drifted")
	}

	// The source keeps learning independently of its clones.
	if _, err := ev.Eval(in, rand.New(rand.NewSource(5))); err != nil {
		t.Fatal(err)
	}
	if c1.GP().Len() != srcPoints {
		t.Fatal("source training leaked into a clone")
	}
}
