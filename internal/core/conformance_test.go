package core

import (
	"math"
	"math/rand"
	"testing"

	"olgapro/internal/ecdf"
	"olgapro/internal/kernel"
	"olgapro/internal/udf"
)

// conformanceCase is one statistical-conformance workload: an analytic UDF
// whose true per-sample outputs are computable exactly, so the returned
// distribution can be compared against ground truth on the very samples the
// evaluator inferred.
type conformanceCase struct {
	name   string
	seed   int64
	tuples int
	m      int
	dim    int
	span   float64 // input centers drawn from [mid−span, mid+span]^d
	kern   kernel.Kernel
	f      func(x []float64) float64
	heavy  bool
}

// TestStatisticalConformance is the (ε, δ) contract suite: over hundreds of
// seeded tuples it checks that the returned error bound really dominates the
// realized error. Per tuple, the true output distribution over the *same*
// Monte-Carlo samples (so no sampling error enters) must satisfy
//
//	KS(Ŷ′, Y_true)  ≤ ε_GP reported (out.BoundGP)
//	λ-disc(Ŷ′, Y_true) ≤ ε_GP reported
//
// whenever the true function lies inside the confidence envelope — an event
// of probability ≥ 1−δ_GP — so violations may occur at rate at most δ. Any
// future perf PR that silently breaks the bound computation (envelope order,
// discrepancy merge, rank-1 tuning trials) trips this suite.
func TestStatisticalConformance(t *testing.T) {
	cases := []conformanceCase{
		{
			name: "sin_quadratic_1d", seed: 101, tuples: 200, m: 256, dim: 1, span: 4,
			kern: kernel.NewSqExp(1, 1.0),
			f:    func(x []float64) float64 { return math.Sin(2*x[0]) + 0.5*x[0]*x[0] },
		},
		{
			name: "smooth_2d_matern", seed: 202, tuples: 220, m: 300, dim: 2, span: 1.5,
			kern:  kernel.NewMatern52(1, 1.2),
			f:     func(x []float64) float64 { return math.Cos(x[0]) * (1 + 0.3*x[1]) },
			heavy: true,
		},
		{
			name: "waves_1d", seed: 303, tuples: 200, m: 300, dim: 1, span: 2,
			kern:  kernel.NewSqExp(1, 0.4),
			f:     func(x []float64) float64 { return math.Sin(3*x[0]) + 0.1*x[0]*x[0] },
			heavy: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("heavy conformance case skipped in -short")
			}
			runConformance(t, tc)
		})
	}
}

func runConformance(t *testing.T, tc conformanceCase) {
	t.Helper()
	e, err := NewEvaluator(udf.FuncOf{D: tc.dim, F: tc.f}, Config{
		Eps: 0.1, Delta: 0.05,
		Kernel:         tc.kern,
		SampleOverride: tc.m,
		MaxAddPerInput: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	delta := e.Config().Delta
	rng := rand.New(rand.NewSource(tc.seed))
	samples := make([][]float64, tc.m)
	trueOuts := make([]float64, tc.m)
	ksViolations, discViolations := 0, 0
	for tup := 0; tup < tc.tuples; tup++ {
		center := make([]float64, tc.dim)
		for j := range center {
			center[j] = 5 + tc.span*(2*rng.Float64()-1)
		}
		for i := range samples {
			row := make([]float64, tc.dim)
			for j := range row {
				row[j] = center[j] + 0.3*rng.NormFloat64()
			}
			samples[i] = row
		}
		out, err := e.EvalSamples(samples, rng)
		if err != nil {
			t.Fatalf("tuple %d: %v", tup, err)
		}
		if out.Dist == nil {
			t.Fatalf("tuple %d: no distribution returned", tup)
		}
		if out.BoundGP < 0 {
			t.Fatalf("tuple %d: negative GP bound %g", tup, out.BoundGP)
		}
		if got := out.BoundGP + out.BoundMC; math.Abs(got-out.Bound) > 1e-12 {
			t.Fatalf("tuple %d: bound decomposition %g ≠ %g", tup, got, out.Bound)
		}
		for i, x := range samples {
			trueOuts[i] = tc.f(x)
		}
		truth := ecdf.New(trueOuts)
		tol := 1e-9
		if ks := ecdf.KS(out.Dist, truth); ks > out.BoundGP+tol {
			ksViolations++
		}
		if d := ecdf.DiscrepancyLambda(out.Dist, truth, out.Lambda); d > out.BoundGP+tol {
			discViolations++
		}
	}
	// The envelope holds with probability ≥ 1−δ_GP per tuple; δ (total) is a
	// generous ceiling for the violation rate and still orders of magnitude
	// below what a broken bound computation produces.
	maxViol := int(math.Ceil(delta * float64(tc.tuples)))
	if ksViolations > maxViol {
		t.Errorf("KS bound violated on %d/%d tuples (allowed %d): reported ε_GP fails to dominate the realized KS error",
			ksViolations, tc.tuples, maxViol)
	}
	if discViolations > maxViol {
		t.Errorf("λ-discrepancy bound violated on %d/%d tuples (allowed %d)",
			discViolations, tc.tuples, maxViol)
	}
	t.Logf("%s: %d tuples, KS violations %d, λ-disc violations %d (allowed %d), training points %d",
		tc.name, tc.tuples, ksViolations, discViolations, maxViol, e.GP().Len())
}
