package core

import (
	"math"
	"math/rand"
	"testing"

	"olgapro/internal/ecdf"
	"olgapro/internal/kernel"
	"olgapro/internal/udf"
)

// conformanceCase is one statistical-conformance workload: an analytic UDF
// whose true per-sample outputs are computable exactly, so the returned
// distribution can be compared against ground truth on the very samples the
// evaluator inferred.
type conformanceCase struct {
	name   string
	seed   int64
	tuples int
	m      int
	dim    int
	span   float64 // input centers drawn from [mid−span, mid+span]^d
	kern   kernel.Kernel
	f      func(x []float64) float64
	heavy  bool
	// sparseBudget > 0 runs the case on the budgeted sparse emulator.
	sparseBudget  int
	sparseInflate float64
}

// TestStatisticalConformance is the (ε, δ) contract suite: over hundreds of
// seeded tuples it checks that the returned error bound really dominates the
// realized error. Per tuple, the true output distribution over the *same*
// Monte-Carlo samples (so no sampling error enters) must satisfy
//
//	KS(Ŷ′, Y_true)  ≤ ε_GP reported (out.BoundGP)
//	λ-disc(Ŷ′, Y_true) ≤ ε_GP reported
//
// whenever the true function lies inside the confidence envelope — an event
// of probability ≥ 1−δ_GP — so violations may occur at rate at most δ. Any
// future perf PR that silently breaks the bound computation (envelope order,
// discrepancy merge, rank-1 tuning trials) trips this suite.
func TestStatisticalConformance(t *testing.T) {
	cases := []conformanceCase{
		{
			name: "sin_quadratic_1d", seed: 101, tuples: 200, m: 256, dim: 1, span: 4,
			kern: kernel.NewSqExp(1, 1.0),
			f:    func(x []float64) float64 { return math.Sin(2*x[0]) + 0.5*x[0]*x[0] },
		},
		{
			name: "smooth_2d_matern", seed: 202, tuples: 220, m: 300, dim: 2, span: 1.5,
			kern:  kernel.NewMatern52(1, 1.2),
			f:     func(x []float64) float64 { return math.Cos(x[0]) * (1 + 0.3*x[1]) },
			heavy: true,
		},
		{
			name: "waves_1d", seed: 303, tuples: 200, m: 300, dim: 1, span: 2,
			kern:  kernel.NewSqExp(1, 0.4),
			f:     func(x []float64) float64 { return math.Sin(3*x[0]) + 0.1*x[0]*x[0] },
			heavy: true,
		},
		// The same contract must hold on the budgeted sparse path: the
		// inducing-point approximation error hides inside the inflated
		// predictive variance, so the reported ε_GP stays a valid bound at
		// any budget. Budgets chosen well below the point counts the
		// workloads reach, so admission, absorption, and swap maintenance
		// all exercise. The first case doubles as the -short race-job smoke.
		{
			name: "sparse_b24_sin_quadratic_1d", seed: 404, tuples: 120, m: 256, dim: 1, span: 4,
			kern:         kernel.NewSqExp(1, 1.0),
			f:            func(x []float64) float64 { return math.Sin(2*x[0]) + 0.5*x[0]*x[0] },
			sparseBudget: 24,
		},
		{
			name: "sparse_b64_sin_quadratic_1d", seed: 505, tuples: 200, m: 256, dim: 1, span: 4,
			kern:         kernel.NewSqExp(1, 1.0),
			f:            func(x []float64) float64 { return math.Sin(2*x[0]) + 0.5*x[0]*x[0] },
			sparseBudget: 64, heavy: true,
		},
		{
			name: "sparse_b160_smooth_2d", seed: 606, tuples: 180, m: 300, dim: 2, span: 1.5,
			kern:         kernel.NewMatern52(1, 1.2),
			f:            func(x []float64) float64 { return math.Cos(x[0]) * (1 + 0.3*x[1]) },
			sparseBudget: 160, heavy: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("heavy conformance case skipped in -short")
			}
			runConformance(t, tc)
		})
	}
}

func runConformance(t *testing.T, tc conformanceCase) {
	t.Helper()
	e, err := NewEvaluator(udf.FuncOf{D: tc.dim, F: tc.f}, Config{
		Eps: 0.1, Delta: 0.05,
		Kernel:         tc.kern,
		SampleOverride: tc.m,
		MaxAddPerInput: 15,
		SparseBudget:   tc.sparseBudget,
		SparseInflate:  tc.sparseInflate,
	})
	if err != nil {
		t.Fatal(err)
	}
	delta := e.Config().Delta
	rng := rand.New(rand.NewSource(tc.seed))
	samples := make([][]float64, tc.m)
	trueOuts := make([]float64, tc.m)
	ksViolations, discViolations := 0, 0
	metLateBudget, lateTuples := 0, 0
	for tup := 0; tup < tc.tuples; tup++ {
		center := make([]float64, tc.dim)
		for j := range center {
			center[j] = 5 + tc.span*(2*rng.Float64()-1)
		}
		for i := range samples {
			row := make([]float64, tc.dim)
			for j := range row {
				row[j] = center[j] + 0.3*rng.NormFloat64()
			}
			samples[i] = row
		}
		out, err := e.EvalSamples(samples, rng)
		if err != nil {
			t.Fatalf("tuple %d: %v", tup, err)
		}
		if out.Dist == nil {
			t.Fatalf("tuple %d: no distribution returned", tup)
		}
		if out.BoundGP < 0 {
			t.Fatalf("tuple %d: negative GP bound %g", tup, out.BoundGP)
		}
		if got := out.BoundGP + out.BoundMC; math.Abs(got-out.Bound) > 1e-12 {
			t.Fatalf("tuple %d: bound decomposition %g ≠ %g", tup, got, out.Bound)
		}
		if tup >= tc.tuples/2 {
			lateTuples++
			if out.MetBudget {
				metLateBudget++
			}
		}
		if tc.sparseBudget > 0 {
			if got := e.Sparse().InducingLen(); got > tc.sparseBudget {
				t.Fatalf("tuple %d: inducing set %d exceeds budget %d", tup, got, tc.sparseBudget)
			}
			if out.LocalPoints > tc.sparseBudget {
				t.Fatalf("tuple %d: LocalPoints %d exceeds budget %d", tup, out.LocalPoints, tc.sparseBudget)
			}
		}
		for i, x := range samples {
			trueOuts[i] = tc.f(x)
		}
		truth := ecdf.New(trueOuts)
		tol := 1e-9
		if ks := ecdf.KS(out.Dist, truth); ks > out.BoundGP+tol {
			ksViolations++
		}
		if d := ecdf.DiscrepancyLambda(out.Dist, truth, out.Lambda); d > out.BoundGP+tol {
			discViolations++
		}
	}
	// The envelope holds with probability ≥ 1−δ_GP per tuple; δ (total) is a
	// generous ceiling for the violation rate and still orders of magnitude
	// below what a broken bound computation produces.
	maxViol := int(math.Ceil(delta * float64(tc.tuples)))
	if ksViolations > maxViol {
		t.Errorf("KS bound violated on %d/%d tuples (allowed %d): reported ε_GP fails to dominate the realized KS error",
			ksViolations, tc.tuples, maxViol)
	}
	if discViolations > maxViol {
		t.Errorf("λ-discrepancy bound violated on %d/%d tuples (allowed %d)",
			discViolations, tc.tuples, maxViol)
	}
	// Once the model has seen half the stream it should meet the ε_GP budget
	// on most tuples (Bound ≤ ε) — the operational usefulness half of the
	// contract; validity alone is satisfiable by an infinitely wide envelope.
	if lateTuples > 0 && float64(metLateBudget) < 0.8*float64(lateTuples) {
		t.Errorf("only %d/%d late tuples met the ε_GP budget", metLateBudget, lateTuples)
	}
	t.Logf("%s: %d tuples, KS violations %d, λ-disc violations %d (allowed %d), training points %d, late budget hits %d/%d",
		tc.name, tc.tuples, ksViolations, discViolations, maxViol, e.Points(), metLateBudget, lateTuples)
}

// TestSparseDifferentialMeans trains an exact evaluator and a budgeted
// sparse evaluator on the identical point stream (same kernel, same
// hyperparameters, no retraining) and checks that everywhere in the domain
// the sparse posterior mean stays within a few inflated standard deviations
// of the exact posterior mean. This is the differential half of the sparse
// conformance story: the inflated DTC variance must be an honest measure of
// how far the budgeted mean can sit from the model it approximates — if the
// sparse mean drifted outside its own band relative to exact, the §4.2
// envelope machinery would inherit an invalid ε_GP.
func TestSparseDifferentialMeans(t *testing.T) {
	f := func(x []float64) float64 { return math.Sin(2*x[0]) + 0.5*x[0]*x[1] }
	mk := func(budget int) *Evaluator {
		e, err := NewEvaluator(udf.FuncOf{D: 2, F: f}, Config{
			Eps: 0.1, Delta: 0.05,
			// Amplitude matched to the data scale (var y ≈ 5 over the domain):
			// with retraining disabled the calibration in gp.Sparse.Train
			// never runs, and a prior orders of magnitude under the data
			// variance would standardize real mean error by an arbitrarily
			// small band. Deployment keeps the two aligned automatically.
			Kernel:       kernel.NewSqExp(2.5, 0.8),
			SparseBudget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	exact := mk(0)
	for _, budget := range []int{32, 96} {
		sp := mk(budget)
		rng := rand.New(rand.NewSource(707))
		for i := 0; i < 400; i++ {
			x := []float64{4 * rng.Float64(), 4 * rng.Float64()}
			if err := exact.AddTrainingAt(x); err != nil {
				t.Fatal(err)
			}
			if err := sp.AddTrainingAt(x); err != nil {
				t.Fatal(err)
			}
		}
		// Queries are perturbations of training inputs — the localized regime
		// §4 inference actually runs in (MC samples scatter around tuple
		// means the tuner has trained near). The pinned property is the one
		// ε_GP validity actually needs: at every query the sparse mean is
		// either inside its own inflated band around the exact mean, or its
		// absolute gap is a small fraction of λ = LambdaFrac·range — too
		// small to move any envelope straddle of the λ-grid. Pointwise
		// z-scores alone are the wrong metric: where the basis is locally
		// dense, DTC variance shrinks to the jitter floor while a budgeted
		// basis necessarily keeps O(range·1e-4) mean error, so z can be
		// large exactly where the error is operationally negligible.
		var yMin, yMax = math.Inf(1), math.Inf(-1)
		for i := 0; i < exact.Points(); i++ {
			y := exact.GP().Y(i)
			yMin, yMax = math.Min(yMin, y), math.Max(yMax, y)
		}
		lamFloor := 0.1 * 0.01 * (yMax - yMin)
		worstZ, worstGap := 0.0, 0.0
		for q := 0; q < 500; q++ {
			base := sp.Sparse().X(rng.Intn(sp.Points()))
			x := []float64{base[0] + 0.15*rng.NormFloat64(), base[1] + 0.15*rng.NormFloat64()}
			em, _ := exact.GP().Predict(x)
			sm, sv := sp.Sparse().Predict(x)
			if sv <= 0 {
				t.Fatalf("budget %d: non-positive sparse variance %g at %v", budget, sv, x)
			}
			gap := math.Abs(sm - em)
			if gap > 5*math.Sqrt(sv) && gap > lamFloor {
				t.Errorf("budget %d: sparse mean gap %.3g at %v exceeds both 5 inflated σ (%.3g) and 0.1λ (%.3g)",
					budget, gap, x, 5*math.Sqrt(sv), lamFloor)
			}
			if z := gap / math.Sqrt(sv); z > worstZ {
				worstZ = z
			}
			if gap > worstGap {
				worstGap = gap
			}
		}
		t.Logf("budget %d: worst gap %.3g (0.1λ = %.3g), worst z %.2fσ over 500 queries", budget, worstGap, lamFloor, worstZ)
		if exact.Points() != sp.Points() {
			t.Fatalf("training streams diverged: %d vs %d", exact.Points(), sp.Points())
		}
		exact = mk(0)
	}
}
