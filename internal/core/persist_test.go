package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"math"
	"math/rand"
	"strings"
	"testing"

	"olgapro/internal/gp"
	"olgapro/internal/kernel"
	"olgapro/internal/udf"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := udf.Standard(udf.F3, 31)
	ev, err := NewEvaluator(f, Config{Kernel: kernel.NewSqExp(0.5, 1.5)})
	if err != nil {
		t.Fatal(err)
	}
	// Train on a stream, including a hyperparameter retraining.
	for i := 0; i < 6; i++ {
		if _, err := ev.Eval(gaussianInput(randomCenter(rng, 2), 0.5), rng); err != nil {
			t.Fatal(err)
		}
	}
	wantPoints := ev.GP().Len()
	wantParams := ev.Config().Kernel.Params(nil)

	var buf bytes.Buffer
	if err := ev.Save(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := Load(f, Config{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.GP().Len() != wantPoints {
		t.Fatalf("restored %d points, want %d", restored.GP().Len(), wantPoints)
	}
	gotParams := restored.Config().Kernel.Params(nil)
	for i := range wantParams {
		if math.Abs(gotParams[i]-wantParams[i]) > 1e-12 {
			t.Fatalf("kernel params differ: %v vs %v", gotParams, wantParams)
		}
	}
	// Predictions must match exactly: same training data, same kernel.
	for trial := 0; trial < 20; trial++ {
		x := randomCenter(rng, 2)
		m1, v1 := ev.GP().Predict(x)
		m2, v2 := restored.GP().Predict(x)
		if math.Abs(m1-m2) > 1e-9 || math.Abs(v1-v2) > 1e-9 {
			t.Fatalf("restored prediction differs at %v: (%g,%g) vs (%g,%g)", x, m1, v1, m2, v2)
		}
	}
	// The restored evaluator keeps working online without re-paying for the
	// learned region.
	counter := udf.NewCounter(f, 0, nil)
	warm, err := Load(counter, Config{}, mustSave(t, ev))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Eval(gaussianInput([]float64{5, 5}, 0.5), rng); err != nil {
		t.Fatal(err)
	}
	if counter.Calls() > 10 {
		t.Fatalf("restored evaluator re-paid %d UDF calls", counter.Calls())
	}
}

func mustSave(t *testing.T, ev *Evaluator) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := ev.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestSnapshotKernelFamilies(t *testing.T) {
	kernels := []kernel.Kernel{
		kernel.NewSqExp(1.5, 0.7),
		kernel.NewMatern32(1.2, 0.9),
		kernel.NewMatern52(0.8, 1.1),
		kernel.NewSqExpARD(1.1, []float64{0.5, 2}),
	}
	f := udf.FuncOf{D: 2, F: func(x []float64) float64 { return x[0] + x[1] }}
	for _, k := range kernels {
		ev, err := NewEvaluator(f, Config{Kernel: k})
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.AddTrainingAt([]float64{1, 2}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ev.Save(&buf); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		restored, err := Load(f, Config{}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		got := restored.Config().Kernel.String()
		if !strings.HasPrefix(got, strings.SplitN(k.String(), "(", 2)[0]) {
			t.Fatalf("restored kernel %q for saved %q", got, k.String())
		}
	}
}

// The on-disk snapshot format is versioned: the current writer emits
// magic+version+gob, the reader rejects future versions, and bare-gob files
// from before the header existed still load (as version 1).
func TestSnapshotVersioning(t *testing.T) {
	f := udf.FuncOf{D: 1, F: func(x []float64) float64 { return 2 * x[0] }}
	ev, err := NewEvaluator(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.AddTrainingAt([]float64{1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ev.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if !bytes.HasPrefix(raw, []byte("olgapro-snap\n")) {
		t.Fatalf("saved snapshot missing magic header: %q", raw[:16])
	}
	s, err := ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if s.Version != SnapshotVersion {
		t.Fatalf("read version %d, want %d", s.Version, SnapshotVersion)
	}
	if s.Noise <= 0 {
		t.Fatalf("snapshot noise %g, want the model's positive jitter", s.Noise)
	}

	// A future version must be rejected, not misread.
	future := append([]byte(nil), raw...)
	future[len("olgapro-snap\n")] = 0xEE // little-endian low byte of version
	if _, err := ReadSnapshot(bytes.NewReader(future)); err == nil {
		t.Fatal("future snapshot version accepted")
	}

	// A legacy headerless gob (the PR ≤ 4 on-disk form) still loads.
	var legacy bytes.Buffer
	snap, err := ev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(&legacy).Encode(snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&legacy)
	if err != nil {
		t.Fatalf("legacy gob rejected: %v", err)
	}
	if got.Version != 1 {
		t.Fatalf("legacy snapshot read as version %d, want 1", got.Version)
	}
	if len(got.X) != len(snap.X) {
		t.Fatalf("legacy snapshot lost training points: %d vs %d", len(got.X), len(snap.X))
	}
}

// snapshotV2 is the exact field set the version-2 writer (PR 5/6) gob-encoded
// — no Sparse* fields. Gob matches struct fields by name, so encoding this
// local type reproduces a v2 byte stream faithfully.
type snapshotV2 struct {
	Version      int
	KernelName   string
	KernelParams []float64
	ARDDim       int
	Noise        float64
	X            [][]float64
	Y            []float64
}

// v2Bytes hand-crafts a version-2 snapshot file: magic, little-endian
// version word, then the v2-era gob payload.
func v2Bytes(t *testing.T, s snapshotV2) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("olgapro-snap\n")
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], 2)
	buf.Write(ver[:])
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// A v2 snapshot written before the sparse fields existed must keep loading:
// the absent fields gob-decode to zero, which Restore reads as "exact model".
func TestSnapshotV2BackwardCompat(t *testing.T) {
	old := snapshotV2{
		Version:      2,
		KernelName:   "matern32",
		KernelParams: kernel.NewMatern32(1.3, 0.8).Params(nil),
		Noise:        1e-6,
		X:            [][]float64{{1}, {2}, {3.5}},
		Y:            []float64{2, 4, 7},
	}
	f := udf.FuncOf{D: 1, F: func(x []float64) float64 { return 2 * x[0] }}

	ev, err := Load(f, Config{}, v2Bytes(t, old))
	if err != nil {
		t.Fatalf("v2 snapshot rejected: %v", err)
	}
	if ev.Sparse() != nil {
		t.Fatal("v2 snapshot restored as a sparse model")
	}
	if ev.GP() == nil || ev.GP().Len() != len(old.X) {
		t.Fatalf("v2 restore lost training points: %d, want %d", ev.Points(), len(old.X))
	}
	if math.Abs(ev.Model().Noise()-old.Noise) > 0 {
		t.Fatalf("v2 restore noise %g, want %g", ev.Model().Noise(), old.Noise)
	}
	// The interpolant reproduces its training outputs.
	var sc gp.Scratch
	m, _ := ev.Model().PredictWith(&sc, []float64{2})
	if math.Abs(m-4) > 1e-3 {
		t.Fatalf("v2 restore predicts %g at a training point with y=4", m)
	}

	// Loading the same v2 file under a sparse config migrates it: the pairs
	// replay through sparse admission instead of the exact factors.
	sp, err := Load(f, Config{SparseBudget: 8}, v2Bytes(t, old))
	if err != nil {
		t.Fatalf("v2 → sparse migration failed: %v", err)
	}
	if sp.Sparse() == nil {
		t.Fatal("sparse config ignored when migrating a v2 snapshot")
	}
	if sp.Points() != len(old.X) {
		t.Fatalf("migration lost points: %d, want %d", sp.Points(), len(old.X))
	}
	if got := sp.Sparse().InducingLen(); got < 1 || got > 8 {
		t.Fatalf("migrated inducing set has %d points, want 1..8", got)
	}
}

// A sparse evaluator survives save → load with its budget, inducing set, and
// served bytes intact: both sides' frozen clones are canonical rebuilds from
// the same state, so their predictions must agree bit-for-bit.
func TestSparseSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := udf.Standard(udf.F3, 31)
	ev, err := NewEvaluator(f, Config{
		Kernel:       kernel.NewSqExp(0.5, 1.5),
		SparseBudget: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := ev.Eval(gaussianInput(randomCenter(rng, 2), 0.5), rng); err != nil {
			t.Fatal(err)
		}
	}
	if ev.Sparse() == nil {
		t.Fatal("evaluator did not come up sparse")
	}

	// The snapshot records the sparse shape.
	snap, err := ev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.SparseBudget != 24 {
		t.Fatalf("snapshot budget %d, want 24", snap.SparseBudget)
	}
	if len(snap.SparseInducing) != ev.Sparse().InducingLen() {
		t.Fatalf("snapshot has %d inducing indices, model has %d",
			len(snap.SparseInducing), ev.Sparse().InducingLen())
	}

	// Restoring with a plain config still yields a sparse model: the
	// snapshot's budget wins.
	restored, err := Load(f, Config{}, mustSave(t, ev))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Sparse() == nil {
		t.Fatal("sparse snapshot restored as an exact model")
	}
	if restored.Points() != ev.Points() {
		t.Fatalf("restored %d points, want %d", restored.Points(), ev.Points())
	}
	ind, rind := ev.Sparse().Inducing(), restored.Sparse().Inducing()
	if len(ind) != len(rind) {
		t.Fatalf("restored %d inducing points, want %d", len(rind), len(ind))
	}
	for i := range ind {
		if ind[i] != rind[i] {
			t.Fatalf("inducing set differs at %d: %d vs %d", i, rind[i], ind[i])
		}
	}

	// Frozen clones on both sides rebuild canonically from identical state
	// and must serve bit-identical numbers.
	c1, err := ev.CloneFrozen()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := restored.CloneFrozen()
	if err != nil {
		t.Fatal(err)
	}
	var sc1, sc2 gp.Scratch
	for trial := 0; trial < 50; trial++ {
		x := randomCenter(rng, 2)
		m1, v1 := c1.Model().PredictWith(&sc1, x)
		m2, v2 := c2.Model().PredictWith(&sc2, x)
		if m1 != m2 || v1 != v2 {
			t.Fatalf("sparse restore not bit-identical at %v: (%g,%g) vs (%g,%g)",
				x, m1, v1, m2, v2)
		}
	}
}

func TestLoadRejectsCorruptData(t *testing.T) {
	f := udf.FuncOf{D: 1, F: func(x []float64) float64 { return x[0] }}
	if _, err := Load(f, Config{}, strings.NewReader("not gob")); err == nil {
		t.Fatal("garbage should fail")
	}
	// Mismatched dimensions.
	s := &Snapshot{KernelName: "sqexp", KernelParams: []float64{0, 0},
		X: [][]float64{{1, 2}}, Y: []float64{3}}
	if _, err := Restore(f, Config{}, s); err == nil {
		t.Fatal("dim mismatch should fail")
	}
	// Unknown kernel.
	s2 := &Snapshot{KernelName: "mystery", KernelParams: []float64{0}}
	if _, err := Restore(f, Config{}, s2); err == nil {
		t.Fatal("unknown kernel should fail")
	}
	// Wrong parameter count.
	s3 := &Snapshot{KernelName: "sqexp", KernelParams: []float64{0}}
	if _, err := Restore(f, Config{}, s3); err == nil {
		t.Fatal("wrong param count should fail")
	}
	// Mismatched X/Y lengths.
	s4 := &Snapshot{KernelName: "sqexp", KernelParams: []float64{0, 0},
		X: [][]float64{{1}}, Y: nil}
	if _, err := Restore(f, Config{}, s4); err == nil {
		t.Fatal("X/Y mismatch should fail")
	}
}
