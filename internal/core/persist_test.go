package core

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"strings"
	"testing"

	"olgapro/internal/kernel"
	"olgapro/internal/udf"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := udf.Standard(udf.F3, 31)
	ev, err := NewEvaluator(f, Config{Kernel: kernel.NewSqExp(0.5, 1.5)})
	if err != nil {
		t.Fatal(err)
	}
	// Train on a stream, including a hyperparameter retraining.
	for i := 0; i < 6; i++ {
		if _, err := ev.Eval(gaussianInput(randomCenter(rng, 2), 0.5), rng); err != nil {
			t.Fatal(err)
		}
	}
	wantPoints := ev.GP().Len()
	wantParams := ev.Config().Kernel.Params(nil)

	var buf bytes.Buffer
	if err := ev.Save(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := Load(f, Config{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.GP().Len() != wantPoints {
		t.Fatalf("restored %d points, want %d", restored.GP().Len(), wantPoints)
	}
	gotParams := restored.Config().Kernel.Params(nil)
	for i := range wantParams {
		if math.Abs(gotParams[i]-wantParams[i]) > 1e-12 {
			t.Fatalf("kernel params differ: %v vs %v", gotParams, wantParams)
		}
	}
	// Predictions must match exactly: same training data, same kernel.
	for trial := 0; trial < 20; trial++ {
		x := randomCenter(rng, 2)
		m1, v1 := ev.GP().Predict(x)
		m2, v2 := restored.GP().Predict(x)
		if math.Abs(m1-m2) > 1e-9 || math.Abs(v1-v2) > 1e-9 {
			t.Fatalf("restored prediction differs at %v: (%g,%g) vs (%g,%g)", x, m1, v1, m2, v2)
		}
	}
	// The restored evaluator keeps working online without re-paying for the
	// learned region.
	counter := udf.NewCounter(f, 0, nil)
	warm, err := Load(counter, Config{}, mustSave(t, ev))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Eval(gaussianInput([]float64{5, 5}, 0.5), rng); err != nil {
		t.Fatal(err)
	}
	if counter.Calls() > 10 {
		t.Fatalf("restored evaluator re-paid %d UDF calls", counter.Calls())
	}
}

func mustSave(t *testing.T, ev *Evaluator) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := ev.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestSnapshotKernelFamilies(t *testing.T) {
	kernels := []kernel.Kernel{
		kernel.NewSqExp(1.5, 0.7),
		kernel.NewMatern32(1.2, 0.9),
		kernel.NewMatern52(0.8, 1.1),
		kernel.NewSqExpARD(1.1, []float64{0.5, 2}),
	}
	f := udf.FuncOf{D: 2, F: func(x []float64) float64 { return x[0] + x[1] }}
	for _, k := range kernels {
		ev, err := NewEvaluator(f, Config{Kernel: k})
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.AddTrainingAt([]float64{1, 2}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ev.Save(&buf); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		restored, err := Load(f, Config{}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		got := restored.Config().Kernel.String()
		if !strings.HasPrefix(got, strings.SplitN(k.String(), "(", 2)[0]) {
			t.Fatalf("restored kernel %q for saved %q", got, k.String())
		}
	}
}

// The on-disk snapshot format is versioned: the current writer emits
// magic+version+gob, the reader rejects future versions, and bare-gob files
// from before the header existed still load (as version 1).
func TestSnapshotVersioning(t *testing.T) {
	f := udf.FuncOf{D: 1, F: func(x []float64) float64 { return 2 * x[0] }}
	ev, err := NewEvaluator(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.AddTrainingAt([]float64{1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ev.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if !bytes.HasPrefix(raw, []byte("olgapro-snap\n")) {
		t.Fatalf("saved snapshot missing magic header: %q", raw[:16])
	}
	s, err := ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if s.Version != SnapshotVersion {
		t.Fatalf("read version %d, want %d", s.Version, SnapshotVersion)
	}
	if s.Noise <= 0 {
		t.Fatalf("snapshot noise %g, want the model's positive jitter", s.Noise)
	}

	// A future version must be rejected, not misread.
	future := append([]byte(nil), raw...)
	future[len("olgapro-snap\n")] = 0xEE // little-endian low byte of version
	if _, err := ReadSnapshot(bytes.NewReader(future)); err == nil {
		t.Fatal("future snapshot version accepted")
	}

	// A legacy headerless gob (the PR ≤ 4 on-disk form) still loads.
	var legacy bytes.Buffer
	snap, err := ev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(&legacy).Encode(snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&legacy)
	if err != nil {
		t.Fatalf("legacy gob rejected: %v", err)
	}
	if got.Version != 1 {
		t.Fatalf("legacy snapshot read as version %d, want 1", got.Version)
	}
	if len(got.X) != len(snap.X) {
		t.Fatalf("legacy snapshot lost training points: %d vs %d", len(got.X), len(snap.X))
	}
}

func TestLoadRejectsCorruptData(t *testing.T) {
	f := udf.FuncOf{D: 1, F: func(x []float64) float64 { return x[0] }}
	if _, err := Load(f, Config{}, strings.NewReader("not gob")); err == nil {
		t.Fatal("garbage should fail")
	}
	// Mismatched dimensions.
	s := &Snapshot{KernelName: "sqexp", KernelParams: []float64{0, 0},
		X: [][]float64{{1, 2}}, Y: []float64{3}}
	if _, err := Restore(f, Config{}, s); err == nil {
		t.Fatal("dim mismatch should fail")
	}
	// Unknown kernel.
	s2 := &Snapshot{KernelName: "mystery", KernelParams: []float64{0}}
	if _, err := Restore(f, Config{}, s2); err == nil {
		t.Fatal("unknown kernel should fail")
	}
	// Wrong parameter count.
	s3 := &Snapshot{KernelName: "sqexp", KernelParams: []float64{0}}
	if _, err := Restore(f, Config{}, s3); err == nil {
		t.Fatal("wrong param count should fail")
	}
	// Mismatched X/Y lengths.
	s4 := &Snapshot{KernelName: "sqexp", KernelParams: []float64{0, 0},
		X: [][]float64{{1}}, Y: nil}
	if _, err := Restore(f, Config{}, s4); err == nil {
		t.Fatal("X/Y mismatch should fail")
	}
}
