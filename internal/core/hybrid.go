package core

import (
	"math/rand"
	"sync/atomic"
	"time"

	"olgapro/internal/dist"
	"olgapro/internal/mc"
	"olgapro/internal/udf"
)

// Engine identifies which evaluation strategy processed an input.
type Engine int

const (
	// EngineUnknown is the zero value: the output was never stamped. Kept
	// distinct from the real engines so a missing stamp is detectable.
	EngineUnknown Engine = iota
	// EngineGP is the OLGAPRO Gaussian-process path.
	EngineGP
	// EngineMC is direct Monte-Carlo simulation.
	EngineMC
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineGP:
		return "GP"
	case EngineMC:
		return "MC"
	default:
		return "unknown"
	}
}

// HybridConfig configures the hybrid solution of §5.4, which explores the
// UDF's cost on the fly and routes inputs to the cheaper engine.
type HybridConfig struct {
	Config
	// CalibrationInputs is how many inputs run on the GP path while
	// measuring costs before the engine choice is made (default 10).
	CalibrationInputs int
	// EvalTime is the nominal UDF evaluation time T. When 0, T is measured
	// from the wall time of actual UDF calls. Setting it explicitly matches
	// the harness's virtual-clock experiments.
	EvalTime time.Duration
}

// timedFunc measures the wall time of UDF calls.
type timedFunc struct {
	f       udf.Func
	calls   int64
	totalNs int64
}

func (t *timedFunc) Dim() int { return t.f.Dim() }

func (t *timedFunc) Eval(x []float64) float64 {
	start := time.Now()
	y := t.f.Eval(x)
	atomic.AddInt64(&t.totalNs, int64(time.Since(start)))
	atomic.AddInt64(&t.calls, 1)
	return y
}

func (t *timedFunc) avg() time.Duration {
	c := atomic.LoadInt64(&t.calls)
	if c == 0 {
		return 0
	}
	return time.Duration(atomic.LoadInt64(&t.totalNs) / c)
}

// Hybrid runs the calibration-then-choose strategy: the first
// CalibrationInputs inputs go through the GP path while both the UDF
// evaluation time and the GP's per-input cost are measured; afterwards each
// input goes to whichever engine is projected to be cheaper.
type Hybrid struct {
	cfg   HybridConfig
	tf    *timedFunc
	eval  *Evaluator
	mcCfg mc.Config

	inputs   int
	gpCostNs int64 // accumulated GP per-input cost (excluding UDF wall, plus nominal UDF cost)
	gpInputs int
	decided  bool
	choice   Engine
}

// NewHybrid builds a hybrid evaluator for the UDF.
func NewHybrid(f udf.Func, cfg HybridConfig) (*Hybrid, error) {
	if cfg.CalibrationInputs <= 0 {
		cfg.CalibrationInputs = 10
	}
	tf := &timedFunc{f: f}
	eval, err := NewEvaluator(tf, cfg.Config)
	if err != nil {
		return nil, err
	}
	ecfg := eval.Config()
	return &Hybrid{
		cfg:    cfg,
		tf:     tf,
		eval:   eval,
		choice: EngineGP, // the calibration engine, until decided
		mcCfg: mc.Config{
			Eps: ecfg.Eps, Delta: ecfg.Delta, Metric: mc.MetricDiscrepancy,
			Predicate: ecfg.Predicate,
		},
	}, nil
}

// Evaluator exposes the underlying GP evaluator.
func (h *Hybrid) Evaluator() *Evaluator { return h.eval }

// Choice returns the engine selected after calibration; before the decision
// it returns EngineGP (the calibration engine) and decided = false.
func (h *Hybrid) Choice() (Engine, bool) { return h.choice, h.decided }

// evalTime returns the nominal UDF cost T.
func (h *Hybrid) evalTime() time.Duration {
	if h.cfg.EvalTime > 0 {
		return h.cfg.EvalTime
	}
	return h.tf.avg()
}

// mcCostEstimate projects the cost of one MC input: m × T.
func (h *Hybrid) mcCostEstimate() time.Duration {
	m := mc.SampleSize(h.mcCfg.Eps, h.mcCfg.Delta, h.mcCfg.Metric)
	return time.Duration(m) * h.evalTime()
}

// gpCostEstimate is the measured average per-input GP cost with UDF calls
// charged at the nominal T.
func (h *Hybrid) gpCostEstimate() time.Duration {
	if h.gpInputs == 0 {
		return 0
	}
	return time.Duration(h.gpCostNs / int64(h.gpInputs))
}

// Eval routes one uncertain input to the current engine.
func (h *Hybrid) Eval(input dist.Vector, rng *rand.Rand) (*Output, Engine, error) {
	h.inputs++
	if h.decided && h.choice == EngineMC {
		res, err := mc.Evaluate(h.tf.f, input, h.mcCfg, rng)
		if err != nil {
			return nil, EngineMC, err
		}
		out := &Output{
			Dist:     res.Dist,
			Bound:    h.mcCfg.Eps,
			BoundMC:  h.mcCfg.Eps,
			Samples:  res.Samples,
			UDFCalls: res.UDFCalls,
			Filtered: res.Filtered,
			TEPLower: res.TEP, TEPUpper: res.TEP,
			MetBudget: true,
			Engine:    EngineMC,
		}
		return out, EngineMC, nil
	}
	// GP path, with cost accounting during calibration.
	callsBefore := atomic.LoadInt64(&h.tf.calls)
	udfNsBefore := atomic.LoadInt64(&h.tf.totalNs)
	start := time.Now()
	out, err := h.eval.Eval(input, rng)
	wall := time.Since(start)
	if err != nil {
		return nil, EngineGP, err
	}
	out.Engine = EngineGP
	udfCalls := atomic.LoadInt64(&h.tf.calls) - callsBefore
	udfWall := time.Duration(atomic.LoadInt64(&h.tf.totalNs) - udfNsBefore)
	cost := wall - udfWall + time.Duration(udfCalls)*h.evalTime()
	h.gpCostNs += int64(cost)
	h.gpInputs++
	if !h.decided && h.inputs >= h.cfg.CalibrationInputs {
		h.decided = true
		if h.gpCostEstimate() <= h.mcCostEstimate() {
			h.choice = EngineGP
		} else {
			h.choice = EngineMC
		}
	}
	return out, EngineGP, nil
}
