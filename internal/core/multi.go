package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"olgapro/internal/dist"
	"olgapro/internal/udf"
)

// MultiFunc is a black-box vector-valued UDF f: ℝᵈ → ℝᵏ. Supporting
// multivariate output is listed as future work in the paper (§8); this
// implementation models each output component with its own independent
// Gaussian process while sharing the underlying UDF evaluations.
type MultiFunc interface {
	// Dim returns the input dimensionality d.
	Dim() int
	// OutDim returns the output dimensionality k.
	OutDim() int
	// EvalVec evaluates the function, filling and returning out (which may
	// be nil).
	EvalVec(x []float64, out []float64) []float64
}

// MultiFuncOf adapts a plain Go function into a MultiFunc.
type MultiFuncOf struct {
	D, K int
	F    func(x []float64, out []float64) []float64
}

// Dim returns the declared input dimensionality.
func (m MultiFuncOf) Dim() int { return m.D }

// OutDim returns the declared output dimensionality.
func (m MultiFuncOf) OutDim() int { return m.K }

// EvalVec calls the wrapped function.
func (m MultiFuncOf) EvalVec(x []float64, out []float64) []float64 { return m.F(x, out) }

// vecCache memoizes vector UDF evaluations so that the k per-component
// evaluators pay for one UDF call per distinct point, not k. Entries are
// keyed by the exact float bits of the input point; the cache resets once
// it exceeds a bound (training-point sets are small, so resets are rare).
type vecCache struct {
	mu    sync.Mutex
	f     MultiFunc
	cache map[string][]float64
	calls int
	limit int
}

func newVecCache(f MultiFunc) *vecCache {
	return &vecCache{f: f, cache: make(map[string][]float64), limit: 1 << 16}
}

func pointKey(x []float64) string {
	b := make([]byte, 0, len(x)*8)
	for _, v := range x {
		u := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(u>>s))
		}
	}
	return string(b)
}

// eval returns the full output vector at x, calling the UDF at most once.
func (c *vecCache) eval(x []float64) []float64 {
	key := pointKey(x)
	c.mu.Lock()
	if v, ok := c.cache[key]; ok {
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	v := c.f.EvalVec(x, nil)
	cp := make([]float64, len(v))
	copy(cp, v)
	c.mu.Lock()
	if len(c.cache) >= c.limit {
		c.cache = make(map[string][]float64)
	}
	c.cache[key] = cp
	c.calls++
	c.mu.Unlock()
	return cp
}

// Calls returns the number of distinct UDF evaluations so far.
func (c *vecCache) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// component adapts one output component of the cached vector UDF to the
// scalar udf.Func interface the per-component evaluators consume.
type component struct {
	cache *vecCache
	idx   int
}

func (c component) Dim() int { return c.cache.f.Dim() }

func (c component) Eval(x []float64) float64 { return c.cache.eval(x)[c.idx] }

// MultiEvaluator runs OLGAPRO independently per output component of a
// vector-valued UDF, sharing UDF evaluations across components.
type MultiEvaluator struct {
	f     MultiFunc
	cache *vecCache
	evals []*Evaluator
}

// NewMultiEvaluator builds one evaluator per output component. The kernel in
// cfg is cloned per component so each learns its own hyperparameters.
func NewMultiEvaluator(f MultiFunc, cfg Config) (*MultiEvaluator, error) {
	if f == nil || f.Dim() <= 0 || f.OutDim() <= 0 {
		return nil, fmt.Errorf("core: multi evaluator needs positive in/out dims")
	}
	cache := newVecCache(f)
	m := &MultiEvaluator{f: f, cache: cache}
	for i := 0; i < f.OutDim(); i++ {
		ccfg := cfg
		if cfg.Kernel != nil {
			ccfg.Kernel = cfg.Kernel.Clone()
		}
		ev, err := NewEvaluator(component{cache: cache, idx: i}, ccfg)
		if err != nil {
			return nil, fmt.Errorf("core: component %d: %w", i, err)
		}
		m.evals = append(m.evals, ev)
	}
	return m, nil
}

// Component returns the per-component evaluator (for inspection).
func (m *MultiEvaluator) Component(i int) *Evaluator { return m.evals[i] }

// UDFCalls returns the number of distinct vector UDF evaluations performed.
func (m *MultiEvaluator) UDFCalls() int { return m.cache.Calls() }

// Eval evaluates all output components on one uncertain input, returning
// one Output per component. The Monte-Carlo samples are drawn once and
// shared across components, so bootstrap points (and most tuning picks)
// coincide and the vector-UDF cache pays for each distinct point once.
// Components are processed sequentially because each may add training
// points.
func (m *MultiEvaluator) Eval(input dist.Vector, rng *rand.Rand) ([]*Output, error) {
	if input.Dim() != m.f.Dim() {
		return nil, fmt.Errorf("core: input dim %d ≠ UDF dim %d", input.Dim(), m.f.Dim())
	}
	budget := 0
	for _, ev := range m.evals {
		if ev.SampleBudget() > budget {
			budget = ev.SampleBudget()
		}
	}
	samples := make([][]float64, budget)
	for i := range samples {
		samples[i] = input.SampleVec(rng, nil)
	}
	outs := make([]*Output, len(m.evals))
	for i, ev := range m.evals {
		out, err := ev.EvalSamples(samples[:ev.SampleBudget()], rng)
		if err != nil {
			return nil, fmt.Errorf("core: component %d: %w", i, err)
		}
		outs[i] = out
	}
	return outs, nil
}

// interface guard: component must satisfy udf.Func.
var _ udf.Func = component{}
