package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"olgapro/internal/dist"
	"olgapro/internal/ecdf"
	"olgapro/internal/kernel"
	"olgapro/internal/mc"
	"olgapro/internal/udf"
)

// gaussianInput returns an isotropic Gaussian input centered in the domain.
func gaussianInput(mu []float64, sigma float64) dist.Vector {
	v, err := dist.IsoGaussianVec(mu, sigma)
	if err != nil {
		panic(err)
	}
	return v
}

// randomCenter draws an input mean inside [1, 9]^d.
func randomCenter(rng *rand.Rand, d int) []float64 {
	mu := make([]float64, d)
	for i := range mu {
		mu[i] = 1 + 8*rng.Float64()
	}
	return mu
}

func TestNewEvaluatorValidation(t *testing.T) {
	f := udf.Standard(udf.F1, 1)
	if _, err := NewEvaluator(f, Config{Eps: 1.5}); err == nil {
		t.Error("ε ≥ 1 should be rejected")
	}
	if _, err := NewEvaluator(nil, Config{}); err == nil {
		t.Error("nil UDF should be rejected")
	}
	e, err := NewEvaluator(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Paper defaults.
	cfg := e.Config()
	if cfg.Eps != 0.1 || cfg.Delta != 0.05 || cfg.MCFrac != 0.7 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	epsMC, epsGP, dMC, dGP := cfg.Split()
	if math.Abs(epsMC-0.07) > 1e-12 || math.Abs(epsGP-0.03) > 1e-12 {
		t.Errorf("ε split = %g/%g", epsMC, epsGP)
	}
	if math.Abs((1-dMC)*(1-dGP)-(1-0.05)) > 1e-12 {
		t.Errorf("δ split does not compose: %g %g", dMC, dGP)
	}
	if e.SampleBudget() != mc.SampleSize(epsMC, dMC, mc.MetricDiscrepancy) {
		t.Errorf("sample budget %d", e.SampleBudget())
	}
}

func TestEvalDimMismatch(t *testing.T) {
	e, err := NewEvaluator(udf.Standard(udf.F1, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := e.Eval(gaussianInput([]float64{5}, 0.5), rng); err == nil {
		t.Fatal("dim mismatch should error")
	}
}

func TestEvalProducesBoundedOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := udf.Standard(udf.F1, 3)
	e, err := NewEvaluator(f, Config{Kernel: kernel.NewSqExp(0.5, 2)})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Eval(gaussianInput([]float64{5, 5}, 0.5), rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dist == nil || out.Dist.Len() != e.SampleBudget() {
		t.Fatalf("missing/truncated distribution")
	}
	if out.Bound != out.BoundGP+out.BoundMC {
		t.Errorf("Bound %g ≠ GP %g + MC %g", out.Bound, out.BoundGP, out.BoundMC)
	}
	if out.ZAlpha < 1.9 {
		t.Errorf("z_α = %g implausibly narrow", out.ZAlpha)
	}
	if out.UDFCalls == 0 || out.PointsAdded == 0 {
		t.Errorf("first input should add training points: calls=%d added=%d", out.UDFCalls, out.PointsAdded)
	}
	if out.LocalPoints == 0 {
		t.Errorf("no local points used")
	}
	if out.Lambda <= 0 {
		t.Errorf("λ = %g", out.Lambda)
	}
}

// The core accuracy contract: after the evaluator converges, the returned
// distribution is within the total bound of a high-resolution ground truth,
// and the bound itself meets the ε budget (paper Expt 4 verifies "the
// accuracy requirement ε is always satisfied").
func TestAccuracyAgainstGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := udf.Standard(udf.F3, 1)
	e, err := NewEvaluator(f, Config{
		Eps: 0.1, Delta: 0.05,
		Kernel:         kernel.NewSqExp(0.5, 1.5),
		MaxAddPerInput: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up on a stream of inputs.
	for i := 0; i < 15; i++ {
		if _, err := e.Eval(gaussianInput(randomCenter(rng, 2), 0.5), rng); err != nil {
			t.Fatal(err)
		}
	}
	// Now check fresh inputs against ground truth.
	checked, violations := 0, 0
	for i := 0; i < 5; i++ {
		input := gaussianInput(randomCenter(rng, 2), 0.5)
		out, err := e.Eval(input, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !out.MetBudget {
			continue // bound did not converge for this region yet
		}
		truth := mc.GroundTruth(f, input, 60000, rng)
		actual := ecdf.DiscrepancyLambda(out.Dist, truth, out.Lambda)
		checked++
		if actual > out.Bound+0.02 {
			violations++
			t.Logf("input %d: actual %g > bound %g", i, actual, out.Bound)
		}
	}
	if checked == 0 {
		t.Fatal("no inputs converged within budget")
	}
	if violations > 0 {
		t.Fatalf("%d/%d ground-truth violations", violations, checked)
	}
}

// Bumpy functions need more training points than flat ones (Profile 1 /
// Expt 4 shape).
func TestComplexityDrivesTrainingSetSize(t *testing.T) {
	points := make(map[udf.Family]int)
	for _, fam := range []udf.Family{udf.F1, udf.F4} {
		rng := rand.New(rand.NewSource(4))
		f := udf.Standard(fam, 5)
		e, err := NewEvaluator(f, Config{
			Kernel:         kernel.NewSqExp(0.5, 1.5),
			MaxAddPerInput: 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			if _, err := e.Eval(gaussianInput(randomCenter(rng, 2), 0.5), rng); err != nil {
				t.Fatal(err)
			}
		}
		points[fam] = e.Stats().TrainingPoints
	}
	if points[udf.F4] <= points[udf.F1] {
		t.Fatalf("F4 (%d points) should need more than F1 (%d points)",
			points[udf.F4], points[udf.F1])
	}
}

func TestConvergenceReducesUDFCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := udf.Standard(udf.F1, 6)
	counter := udf.NewCounter(f, 0, nil)
	e, err := NewEvaluator(counter, Config{Kernel: kernel.NewSqExp(0.5, 2)})
	if err != nil {
		t.Fatal(err)
	}
	input := gaussianInput([]float64{5, 5}, 0.5)
	var early, late int
	for i := 0; i < 20; i++ {
		before := counter.Calls()
		if _, err := e.Eval(input, rng); err != nil {
			t.Fatal(err)
		}
		calls := counter.Calls() - before
		if i < 5 {
			early += calls
		}
		if i >= 15 {
			late += calls
		}
	}
	if late >= early {
		t.Fatalf("UDF calls did not decay: first-5 %d, last-5 %d", early, late)
	}
	if late > 2 {
		t.Fatalf("converged evaluator still calls the UDF: %d in last 5 inputs", late)
	}
}

func TestMaxAddPerInputRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := udf.Standard(udf.F4, 7)
	e, err := NewEvaluator(f, Config{MaxAddPerInput: 3, Kernel: kernel.NewSqExp(0.5, 1)})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Eval(gaussianInput([]float64{5, 5}, 0.5), rng)
	if err != nil {
		t.Fatal(err)
	}
	// Bootstrap adds up to 2 points beyond the tuning cap.
	if out.PointsAdded > 3+2 {
		t.Fatalf("PointsAdded = %d exceeds cap", out.PointsAdded)
	}
}

func TestLocalInferenceRespectsGamma(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := udf.Standard(udf.F3, 8)
	e, err := NewEvaluator(f, Config{Kernel: kernel.NewSqExp(0.5, 1.2), MaxAddPerInput: 15})
	if err != nil {
		t.Fatal(err)
	}
	// Populate the model across the domain.
	for i := 0; i < 10; i++ {
		if _, err := e.Eval(gaussianInput(randomCenter(rng, 2), 0.5), rng); err != nil {
			t.Fatal(err)
		}
	}
	if e.GP().Len() < 12 {
		t.Skipf("too few training points (%d) to exercise local inference", e.GP().Len())
	}
	// Select a local subset for a concentrated input and verify the γ
	// contract: |global mean − local mean| ≤ γ ≤ Γ at every sample.
	samples := make([][]float64, 200)
	input := gaussianInput([]float64{3, 3}, 0.3)
	for i := range samples {
		samples[i] = input.SampleVec(rng, nil)
	}
	gammaThresh := e.gammaThreshold()
	ids, gamma := e.selectLocal(samples, gammaThresh)
	if gamma > gammaThresh {
		t.Fatalf("γ = %g exceeds Γ = %g", gamma, gammaThresh)
	}
	var lc localCtx
	if err := e.buildLocal(&lc, ids, gamma); err != nil {
		t.Fatal(err)
	}
	if len(ids) < e.GP().Len() {
		// Only meaningful when something was actually excluded.
		var pb predictBuf
		for _, s := range samples {
			localMean, _ := lc.predict(e, s, &pb)
			globalMean := e.GP().PredictMean(s)
			if diff := math.Abs(globalMean - localMean); diff > gamma+1e-9 {
				t.Fatalf("local mean deviates %g > γ %g", diff, gamma)
			}
		}
	}
}

func TestGlobalInferenceUsesAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := udf.Standard(udf.F1, 9)
	e, err := NewEvaluator(f, Config{GlobalInference: true, Kernel: kernel.NewSqExp(0.5, 2)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		out, err := e.Eval(gaussianInput(randomCenter(rng, 2), 0.5), rng)
		if err != nil {
			t.Fatal(err)
		}
		if out.LocalPoints != e.GP().Len() {
			t.Fatalf("global inference used %d of %d points", out.LocalPoints, e.GP().Len())
		}
	}
}

func TestRetrainPolicies(t *testing.T) {
	run := func(cfg Config) Stats {
		rng := rand.New(rand.NewSource(9))
		f := udf.Standard(udf.F3, 10)
		cfg.Kernel = kernel.NewSqExp(0.5, 3) // deliberately long initial ℓ
		e, err := NewEvaluator(f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if _, err := e.Eval(gaussianInput(randomCenter(rng, 2), 0.5), rng); err != nil {
				t.Fatal(err)
			}
		}
		return e.Stats()
	}
	never := run(Config{Retrain: RetrainNever})
	if never.Retrainings != 0 {
		t.Fatalf("RetrainNever retrained %d times", never.Retrainings)
	}
	eager := run(Config{Retrain: RetrainEager})
	if eager.Retrainings == 0 {
		t.Fatal("RetrainEager never retrained")
	}
	huge := run(Config{Retrain: RetrainThreshold, DeltaTheta: 1e9})
	if huge.Retrainings != 0 {
		t.Fatalf("Δθ=1e9 still retrained %d times", huge.Retrainings)
	}
	small := run(Config{Retrain: RetrainThreshold, DeltaTheta: 1e-6})
	if small.Retrainings == 0 {
		t.Fatal("Δθ=1e-6 never retrained")
	}
	if small.Retrainings > eager.Retrainings {
		t.Fatalf("threshold retrained more (%d) than eager (%d)", small.Retrainings, eager.Retrainings)
	}
}

func TestOnlineFilteringDropsAndKeeps(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := udf.Standard(udf.F1, 11)
	// F1 outputs live in roughly [0, 1]; a predicate on [50, 60] never hits.
	e, err := NewEvaluator(f, Config{
		Predicate: &mc.Predicate{A: 50, B: 60, Theta: 0.1},
		Kernel:    kernel.NewSqExp(0.5, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	input := gaussianInput([]float64{5, 5}, 0.5)
	// Warm up once (the first input pays for bootstrap/tuning).
	if _, err := e.Eval(input, rng); err != nil {
		t.Fatal(err)
	}
	out, err := e.Eval(input, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Filtered {
		t.Fatal("impossible predicate not filtered")
	}
	if out.SamplesInferred >= out.Samples {
		t.Fatalf("filtering did not stop early: %d of %d", out.SamplesInferred, out.Samples)
	}
	if out.Dist != nil {
		t.Fatal("filtered tuple returned a distribution")
	}

	// A predicate over the whole output range must never filter.
	e2, err := NewEvaluator(f, Config{
		Predicate: &mc.Predicate{A: -100, B: 100, Theta: 0.1},
		Kernel:    kernel.NewSqExp(0.5, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	out2, err := e2.Eval(input, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Filtered {
		t.Fatal("always-true predicate filtered")
	}
	if out2.TEPUpper < 0.95 {
		t.Fatalf("TEP upper = %g, want ≈ 1", out2.TEPUpper)
	}
	if out2.TEPLower > out2.TEPUpper {
		t.Fatalf("TEP bounds inverted: [%g, %g]", out2.TEPLower, out2.TEPUpper)
	}
}

func TestTuningPoliciesProduceValidOutputs(t *testing.T) {
	for _, pol := range []TuningPolicy{TuneMaxVariance, TuneRandom, TuneOptimalGreedy} {
		t.Run(pol.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			f := udf.Standard(udf.F3, 12)
			e, err := NewEvaluator(f, Config{
				Tuning: pol,
				Kernel: kernel.NewSqExp(0.5, 1.5),
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				out, err := e.Eval(gaussianInput(randomCenter(rng, 2), 0.5), rng)
				if err != nil {
					t.Fatal(err)
				}
				if out.Dist == nil {
					t.Fatal("no distribution")
				}
			}
		})
	}
}

// The paper's max-variance heuristic should converge with fewer training
// points than random placement (Expt 2 shape).
func TestMaxVarianceBeatsRandom(t *testing.T) {
	// Repeated evaluation of the same input region: the policy that places
	// points well converges with far fewer of them.
	count := func(pol TuningPolicy) int {
		rng := rand.New(rand.NewSource(12))
		f := udf.Standard(udf.F4, 13)
		e, err := NewEvaluator(f, Config{
			Tuning:         pol,
			Kernel:         kernel.NewSqExp(0.5, 1),
			MaxAddPerInput: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		input := gaussianInput([]float64{5, 5}, 0.5)
		for i := 0; i < 20; i++ {
			if _, err := e.Eval(input, rng); err != nil {
				t.Fatal(err)
			}
		}
		return e.Stats().TrainingPoints
	}
	mv := count(TuneMaxVariance)
	rnd := count(TuneRandom)
	// Measured ≈95 vs ≈260; require a clear margin, not just a tie.
	if float64(mv) > 0.8*float64(rnd) {
		t.Fatalf("max-variance used %d points, random %d — expected a clear win", mv, rnd)
	}
}

func TestAddTrainingAtBootstraps(t *testing.T) {
	f := udf.Standard(udf.F1, 14)
	e, err := NewEvaluator(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := e.AddTrainingAt([]float64{float64(2 * i), float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if e.GP().Len() != 5 {
		t.Fatalf("training size %d", e.GP().Len())
	}
	if e.Stats().UDFCalls != 5 {
		t.Fatalf("UDF calls %d", e.Stats().UDFCalls)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	runOnce := func() float64 {
		rng := rand.New(rand.NewSource(42))
		f := udf.Standard(udf.F2, 15)
		e, err := NewEvaluator(f, Config{Kernel: kernel.NewSqExp(0.5, 1.5)})
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.Eval(gaussianInput([]float64{4, 6}, 0.5), rng)
		if err != nil {
			t.Fatal(err)
		}
		return out.Dist.Mean() + out.BoundGP
	}
	if runOnce() != runOnce() {
		t.Fatal("same seed produced different results")
	}
}

func TestHybridPicksMCForCheapUDF(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := udf.Standard(udf.F4, 16) // bumpy: GP needs many points
	h, err := NewHybrid(f, HybridConfig{
		Config:            Config{Kernel: kernel.NewSqExp(0.5, 1)},
		CalibrationInputs: 3,
		EvalTime:          0, // measured: mixture eval is sub-µs
	})
	if err != nil {
		t.Fatal(err)
	}
	var engine Engine
	for i := 0; i < 6; i++ {
		var err error
		_, engine, err = h.Eval(gaussianInput(randomCenter(rng, 2), 0.5), rng)
		if err != nil {
			t.Fatal(err)
		}
	}
	choice, decided := h.Choice()
	if !decided {
		t.Fatal("hybrid never decided")
	}
	if choice != EngineMC || engine != EngineMC {
		t.Fatalf("cheap UDF should route to MC, got %s", choice)
	}
}

func TestHybridPicksGPForExpensiveUDF(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	f := udf.Standard(udf.F1, 17) // smooth: GP converges fast
	h, err := NewHybrid(f, HybridConfig{
		Config:            Config{Kernel: kernel.NewSqExp(0.5, 2)},
		CalibrationInputs: 3,
		EvalTime:          100 * time.Millisecond, // nominal expensive UDF
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := h.Eval(gaussianInput(randomCenter(rng, 2), 0.5), rng); err != nil {
			t.Fatal(err)
		}
	}
	choice, decided := h.Choice()
	if !decided || choice != EngineGP {
		t.Fatalf("expensive UDF should route to GP, got %s (decided=%v)", choice, decided)
	}
}

func TestEngineAndPolicyStrings(t *testing.T) {
	if EngineGP.String() != "GP" || EngineMC.String() != "MC" {
		t.Fatal("engine names")
	}
	if TuneMaxVariance.String() == "" || TuneRandom.String() == "" || TuneOptimalGreedy.String() == "" {
		t.Fatal("tuning names")
	}
	if RetrainThreshold.String() == "" || RetrainEager.String() == "" || RetrainNever.String() == "" {
		t.Fatal("retrain names")
	}
}

// Failure injection: a UDF returning NaN/Inf must produce a clean error,
// never a poisoned model or a panic.
func TestNaNUDFRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	bad := udf.FuncOf{D: 1, F: func(x []float64) float64 { return math.NaN() }}
	e, err := NewEvaluator(bad, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Eval(gaussianInput([]float64{5}, 0.5), rng); err == nil {
		t.Fatal("NaN UDF should error")
	}
	if err := e.AddTrainingAt([]float64{1}); err == nil {
		t.Fatal("AddTrainingAt with NaN should error")
	}
	inf := udf.FuncOf{D: 1, F: func(x []float64) float64 { return math.Inf(1) }}
	e2, err := NewEvaluator(inf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Eval(gaussianInput([]float64{5}, 0.5), rng); err == nil {
		t.Fatal("Inf UDF should error")
	}
}

// Failure injection: a UDF that is fine at first and breaks later must leave
// the evaluator usable with its pre-failure knowledge.
func TestLateUDFFailureLeavesModelUsable(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	calls := 0
	flaky := udf.FuncOf{D: 1, F: func(x []float64) float64 {
		calls++
		if calls > 12 {
			return math.NaN()
		}
		return math.Sin(x[0])
	}}
	e, err := NewEvaluator(flaky, Config{Kernel: kernel.NewSqExp(1, 1.5)})
	if err != nil {
		t.Fatal(err)
	}
	input := gaussianInput([]float64{2}, 0.3)
	// First input trains on good values.
	if _, err := e.Eval(input, rng); err != nil {
		t.Fatal(err)
	}
	points := e.GP().Len()
	if points == 0 {
		t.Fatal("no training happened")
	}
	// Later inputs may fail while the UDF is broken...
	for i := 0; i < 3; i++ {
		_, _ = e.Eval(gaussianInput([]float64{float64(3 + i)}, 0.3), rng)
	}
	// ...but the model keeps its knowledge and predicts sanely where it
	// already converged.
	m, _ := e.GP().Predict([]float64{2})
	if math.Abs(m-math.Sin(2)) > 0.1 {
		t.Fatalf("model poisoned: predict(2) = %g, want ≈ %g", m, math.Sin(2))
	}
}
