package core

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"olgapro/internal/ecdf"
)

// refEnvelopeOf is the sort-based construction envelopeOf replaced: three
// fresh slices, three comparison sorts. The sorted multiset of each support
// is unique, so the adaptive path must reproduce it element for element.
func refEnvelopeOf(means, vars []float64, zAlpha float64, n int) ecdf.Envelope {
	mean := make([]float64, n)
	lower := make([]float64, n)
	upper := make([]float64, n)
	for i := 0; i < n; i++ {
		sd := math.Sqrt(vars[i])
		mean[i] = means[i]
		lower[i] = means[i] - zAlpha*sd
		upper[i] = means[i] + zAlpha*sd
	}
	slices.Sort(mean)
	slices.Sort(lower)
	slices.Sort(upper)
	return ecdf.Envelope{
		Mean:  ecdf.FromSorted(mean),
		Lower: ecdf.FromSorted(lower),
		Upper: ecdf.FromSorted(upper),
	}
}

func assertEnvelopesEqual(t *testing.T, got, want ecdf.Envelope, ctx string) {
	t.Helper()
	pairs := []struct {
		name      string
		got, want []float64
	}{
		{"mean", got.Mean.Values(), want.Mean.Values()},
		{"lower", got.Lower.Values(), want.Lower.Values()},
		{"upper", got.Upper.Values(), want.Upper.Values()},
	}
	for _, p := range pairs {
		if len(p.got) != len(p.want) {
			t.Fatalf("%s: %s support length %d ≠ %d", ctx, p.name, len(p.got), len(p.want))
		}
		for i := range p.got {
			if p.got[i] != p.want[i] {
				t.Fatalf("%s: %s support[%d] = %g ≠ %g", ctx, p.name, i, p.got[i], p.want[i])
			}
		}
	}
}

// TestEnvelopeOfMatchesSortedReference drives one envScratch through the
// call pattern of a real tuning loop — fresh tuple, small perturbations,
// chunked prefix growth, a shrunk next tuple — asserting exact equality with
// the sort-based reference at every step. This is the equivalence test
// pinning the sort-free envelope tentpole.
func TestEnvelopeOfMatchesSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s envScratch
	const m = 300
	means := make([]float64, m)
	vars := make([]float64, m)
	fill := func() {
		for i := range means {
			means[i] = rng.NormFloat64() * 3
			vars[i] = rng.Float64() * 2
		}
	}
	perturb := func(scale float64) {
		for i := range means {
			means[i] += rng.NormFloat64() * scale
			vars[i] = math.Abs(vars[i] + rng.NormFloat64()*scale*0.1)
		}
	}
	fill()
	// Fresh tuple, then ten tuning-style perturbation rounds.
	for round := 0; round < 11; round++ {
		got := s.envelopeOf(means, vars, 2.5, m)
		assertEnvelopesEqual(t, got, refEnvelopeOf(means, vars, 2.5, m), "perturbation round")
		perturb(0.01)
	}
	// Chunked filtering pattern: growing prefixes over fresh data.
	fill()
	for n := 64; n <= m; n += 64 {
		if n > m {
			n = m
		}
		got := s.envelopeOf(means, vars, 1.8, n)
		assertEnvelopesEqual(t, got, refEnvelopeOf(means, vars, 1.8, n), "chunk growth")
	}
	// A following tuple with a smaller budget must reset cleanly.
	fill()
	got := s.envelopeOf(means, vars, 2.0, 50)
	assertEnvelopesEqual(t, got, refEnvelopeOf(means, vars, 2.0, 50), "shrunk budget")
}

// TestEnvelopeOfUniformVariance pins the homoscedastic fast path: with one
// shared variance the lower/upper supports are built as shifts of the sorted
// mean (ecdf.FromSortedShifted) and must equal the reference exactly.
func TestEnvelopeOfUniformVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s envScratch
	const m = 128
	means := make([]float64, m)
	vars := make([]float64, m)
	for i := range means {
		means[i] = rng.NormFloat64()
		vars[i] = 0.37 // one shared predictive variance (prior-only regime)
	}
	for round := 0; round < 3; round++ {
		got := s.envelopeOf(means, vars, 2.2, m)
		assertEnvelopesEqual(t, got, refEnvelopeOf(means, vars, 2.2, m), "uniform variance")
		for i := range means {
			means[i] += rng.NormFloat64() * 0.05
		}
	}
	// Switching from uniform to heteroscedastic on the same scratch must not
	// leave the lower/upper permutations stale.
	for i := range vars {
		vars[i] = rng.Float64()
	}
	got := s.envelopeOf(means, vars, 2.2, m)
	assertEnvelopesEqual(t, got, refEnvelopeOf(means, vars, 2.2, m), "uniform→hetero switch")
}

// TestSortWithPermProperties drives the adaptive natural merge across input
// shapes — sorted, reversed, nearly sorted, duplicate-heavy, random — and
// checks both the sorted result (vs slices.Sort) and that perm keeps tracking
// which original element landed where.
func TestSortWithPermProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := map[string]func(n int) []float64{
		"sorted": func(n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(i)
			}
			return out
		},
		"reversed": func(n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(n - i)
			}
			return out
		},
		"nearly_sorted": func(n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(i) + rng.NormFloat64()*2
			}
			return out
		},
		"duplicates": func(n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(rng.Intn(5))
			}
			return out
		},
		"random": func(n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = rng.NormFloat64()
			}
			return out
		},
	}
	var mergeV []float64
	var mergeP []int
	for name, gen := range shapes {
		for _, n := range []int{0, 1, 2, 3, 17, 100, 513} {
			vals := gen(n)
			orig := slices.Clone(vals)
			perm := make([]int, n)
			for i := range perm {
				perm[i] = i
			}
			sortWithPerm(vals, perm, &mergeV, &mergeP)
			want := slices.Clone(orig)
			slices.Sort(want)
			if !slices.Equal(vals, want) {
				t.Fatalf("%s n=%d: not sorted like slices.Sort", name, n)
			}
			seen := make([]bool, n)
			for k, i := range perm {
				if i < 0 || i >= n || seen[i] {
					t.Fatalf("%s n=%d: perm is not a permutation", name, n)
				}
				seen[i] = true
				if vals[k] != orig[i] {
					t.Fatalf("%s n=%d: perm[%d]=%d does not track its value", name, n, k, i)
				}
			}
		}
	}
}

// TestSortWithPermNaN guards the termination property: NaNs must sort finite-
// last-to-first like slices.Sort (NaN-first total order) rather than stalling
// the natural merge.
func TestSortWithPermNaN(t *testing.T) {
	vals := []float64{3, math.NaN(), 1, math.NaN(), 2}
	perm := []int{0, 1, 2, 3, 4}
	var mv []float64
	var mp []int
	sortWithPerm(vals, perm, &mv, &mp) // must terminate
	want := []float64{3, math.NaN(), 1, math.NaN(), 2}
	slices.Sort(want)
	for i := range vals {
		if vals[i] != want[i] && !(math.IsNaN(vals[i]) && math.IsNaN(want[i])) {
			t.Fatalf("NaN ordering diverges from slices.Sort at %d: %v vs %v", i, vals, want)
		}
	}
}
