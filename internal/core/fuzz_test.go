package core

import (
	"encoding/binary"
	"math"
	"testing"
)

// decodeMoments reads (mean, var) pairs from raw fuzz bytes, sanitized to
// finite means and non-negative finite variances.
func decodeMoments(data []byte, maxPairs int) (means, vars []float64) {
	for len(data) >= 16 && len(means) < maxPairs {
		m := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[8:16]))
		data = data[16:]
		if math.IsNaN(m) || math.IsInf(m, 0) || math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if math.Abs(m) > 1e9 {
			m = math.Mod(m, 1e9)
		}
		v = math.Abs(v)
		if v > 1e9 {
			v = math.Mod(v, 1e9)
		}
		means = append(means, m)
		vars = append(vars, v)
	}
	return means, vars
}

// FuzzEnvelopeOf drives the sort-free envelope construction with arbitrary
// moments and asserts the envelope invariants: every support is ascending,
// the supports are rank-wise ordered (lower ≤ mean ≤ upper), the result
// equals the sort-based reference exactly, the error bound is non-negative,
// and a perturbed second call through the same scratch (exercising the
// persistent-permutation path) upholds all of the above.
func FuzzEnvelopeOf(f *testing.F) {
	seed := make([]byte, 0, 64)
	for _, v := range []float64{1, 0.5, -2, 0.1, 3, 2, 0, 0.4} {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(v))
	}
	f.Add(seed, 2.5, 0.05)
	f.Add(seed[:32], 0.0, 0.0)
	f.Add([]byte("0123456789abcdef0123456789abcdef"), 1.0, 1.0)
	f.Fuzz(func(t *testing.T, data []byte, z, lambda float64) {
		means, vars := decodeMoments(data, 256)
		if len(means) == 0 {
			t.Skip("no decodable moments")
		}
		if math.IsNaN(z) || math.IsInf(z, 0) {
			z = 2
		}
		z = math.Abs(z)
		if z > 100 {
			z = math.Mod(z, 100)
		}
		if math.IsNaN(lambda) || math.IsInf(lambda, 0) || lambda < 0 {
			lambda = 0.1
		}
		if lambda > 100 {
			lambda = math.Mod(lambda, 100)
		}

		var s envScratch
		check := func(pass string) {
			n := len(means)
			env := s.envelopeOf(means, vars, z, n)
			ref := refEnvelopeOf(means, vars, z, n)
			for name, pair := range map[string][2][]float64{
				"mean":  {env.Mean.Values(), ref.Mean.Values()},
				"lower": {env.Lower.Values(), ref.Lower.Values()},
				"upper": {env.Upper.Values(), ref.Upper.Values()},
			} {
				got, want := pair[0], pair[1]
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s: %s support[%d] %g ≠ reference %g", pass, name, i, got[i], want[i])
					}
					if i > 0 && got[i] < got[i-1] {
						t.Fatalf("%s: %s support not ascending at %d", pass, name, i)
					}
				}
			}
			lo, mid, up := env.Lower.Values(), env.Mean.Values(), env.Upper.Values()
			for i := range mid {
				if lo[i] > mid[i] || mid[i] > up[i] {
					t.Fatalf("%s: rank %d violates lower ≤ mean ≤ upper: %g %g %g", pass, i, lo[i], mid[i], up[i])
				}
			}
			if b := env.DiscrepancyBound(lambda); b < 0 {
				t.Fatalf("%s: negative discrepancy bound %g", pass, b)
			}
		}
		check("fresh")
		// Deterministic perturbation derived from the input, re-using the
		// scratch permutations like a tuning iteration does.
		for i := range means {
			means[i] += 0.01 * math.Sin(float64(i)+z)
			vars[i] = math.Abs(vars[i] + 0.001*math.Cos(float64(i)))
		}
		check("perturbed")
	})
}
