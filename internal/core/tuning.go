package core

import (
	"math"
	"math/rand"
	"sort"

	"olgapro/internal/kernel"
	"olgapro/internal/mat"
)

// pickSample chooses which cached Monte-Carlo sample becomes the next
// training point (online tuning, §5.2), honoring the configured policy.
// skip marks samples already tried this tuple. It returns -1 when no
// admissible sample remains.
func (e *Evaluator) pickSample(samples [][]float64, means, vars []float64,
	lc *localCtx, lambda, zAlpha float64, skip *markSet, rng *rand.Rand) int {
	switch e.cfg.Tuning {
	case TuneRandom:
		return pickRandom(len(samples), skip, rng)
	case TuneOptimalGreedy:
		return e.pickOptimalGreedy(samples, means, vars, lc, lambda, zAlpha, skip, rng)
	default:
		return pickMaxVariance(vars, skip)
	}
}

// pickMaxVariance returns the sample with the largest predictive variance —
// the paper's heuristic: train where the emulator is least certain.
func pickMaxVariance(vars []float64, skip *markSet) int {
	best, bestVar := -1, -1.0
	for i, v := range vars {
		if skip.has(i) {
			continue
		}
		if v > bestVar {
			best, bestVar = i, v
		}
	}
	return best
}

// pickRandom returns a uniformly random non-skipped sample.
func pickRandom(n int, skip *markSet, rng *rand.Rand) int {
	if skip.size() >= n {
		return -1
	}
	for tries := 0; tries < 4*n; tries++ {
		i := rng.Intn(n)
		if !skip.has(i) {
			return i
		}
	}
	return -1
}

// greedy search bounds, keeping the hypothetical policy tractable: the paper
// itself caps inputs at 400 samples "for 'optimal greedy' to be feasible".
const (
	greedyMaxCandidates = 64
	greedyMaxEval       = 400
)

// pickOptimalGreedy simulates adding each candidate sample — using the
// current posterior mean as its hypothetical observation, which leaves means
// nearly unchanged while shrinking variances exactly — recomputes the error
// bound, and picks the candidate with the largest bound reduction.
func (e *Evaluator) pickOptimalGreedy(samples [][]float64, means, vars []float64,
	lc *localCtx, lambda, zAlpha float64, skip *markSet, rng *rand.Rand) int {
	// Candidate pool: the highest-variance samples (evaluating every sample
	// is prohibitive even for the reference policy).
	type cand struct {
		idx int
		v   float64
	}
	cands := make([]cand, 0, len(samples))
	for i, v := range vars {
		if !skip.has(i) {
			cands = append(cands, cand{i, v})
		}
	}
	if len(cands) == 0 {
		return -1
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].v > cands[j].v })
	if len(cands) > greedyMaxCandidates {
		cands = cands[:greedyMaxCandidates]
	}
	// Evaluation subset for the bound.
	evalIdx := subsampleIndices(len(samples), greedyMaxEval, rng)

	sc := &e.scratch
	// Local observations for the simulated α′.
	yLocal := resizeFloats(&sc.tuneY, len(lc.ids))
	for i, id := range lc.ids {
		yLocal[i] = e.g.Y(id)
	}

	best, bestBound := -1, math.Inf(1)
	var kbuf, fsbuf, ys []float64
	m2 := resizeFloats(&sc.tuneMeans, len(evalIdx))
	v2 := resizeFloats(&sc.tuneVars, len(evalIdx))
	for _, c := range cands {
		xc := samples[c.idx]
		// Extend a copy of the local factorization with the candidate.
		trial := lc.chol.Clone()
		kvec := kernel.CrossVec(e.cfg.Kernel, lc.xs, xc, kbuf)
		kbuf = kvec
		if err := trial.Extend(kvec, e.cfg.Kernel.Eval(xc, xc)+e.g.Noise()); err != nil {
			continue
		}
		ys = append(append(ys[:0], yLocal...), means[c.idx])
		alphaTrial := trial.SolveVec(ys)
		xsTrial := append(append([][]float64(nil), lc.xs...), xc)
		// Recompute means/vars on the evaluation subset.
		for j, si := range evalIdx {
			x := samples[si]
			kbuf = kernel.CrossVec(e.cfg.Kernel, xsTrial, x, kbuf)
			m2[j] = mat.Dot(kbuf, alphaTrial)
			fsbuf = resizeFloatsVal(fsbuf, len(kbuf))
			trial.ForwardSolveTo(fsbuf, kbuf)
			vv := e.cfg.Kernel.Eval(x, x) - mat.Dot(fsbuf, fsbuf)
			if vv < 0 {
				vv = 0
			}
			v2[j] = vv
		}
		envTrial := sc.tuneEnv.envelopeOf(m2, v2, zAlpha, len(evalIdx))
		b := envTrial.DiscrepancyBoundWith(&sc.bound, lambda)
		if b < bestBound {
			best, bestBound = c.idx, b
		}
	}
	if best < 0 {
		// All simulations failed numerically; fall back to max variance.
		return pickMaxVariance(vars, skip)
	}
	return best
}

// subsampleIndices returns up to max distinct indices in [0, n).
func subsampleIndices(n, max int, rng *rand.Rand) []int {
	if n <= max {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := rng.Perm(n)
	out := make([]int, max)
	copy(out, perm[:max])
	return out
}
