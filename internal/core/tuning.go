package core

import (
	"math"
	"math/rand"
	"sort"

	"olgapro/internal/kernel"
	"olgapro/internal/mat"
	"olgapro/internal/rtree"
)

// pickSample chooses which cached Monte-Carlo sample becomes the next
// training point (online tuning, §5.2), honoring the configured policy.
// skip marks samples already tried this tuple. It returns -1 when no
// admissible sample remains.
func (e *Evaluator) pickSample(samples [][]float64, means, vars []float64,
	lc *localCtx, lambda, zAlpha float64, skip *markSet, rng *rand.Rand) int {
	switch e.cfg.Tuning {
	case TuneRandom:
		return pickRandom(len(samples), skip, rng)
	case TuneOptimalGreedy:
		if e.sg != nil {
			// The greedy simulation borders the exact local Cholesky factor;
			// the sparse emulator has no such factor (admission may not even
			// grow the basis), so fall back to the paper's heuristic.
			return pickMaxVariance(vars, skip)
		}
		return e.pickOptimalGreedy(samples, means, vars, lc, lambda, zAlpha, skip, rng)
	default:
		return pickMaxVariance(vars, skip)
	}
}

// pickMaxVariance returns the sample with the largest predictive variance —
// the paper's heuristic: train where the emulator is least certain.
func pickMaxVariance(vars []float64, skip *markSet) int {
	best, bestVar := -1, -1.0
	for i, v := range vars {
		if skip.has(i) {
			continue
		}
		if v > bestVar {
			best, bestVar = i, v
		}
	}
	return best
}

// pickRandom returns a uniformly random non-skipped sample.
func pickRandom(n int, skip *markSet, rng *rand.Rand) int {
	if skip.size() >= n {
		return -1
	}
	for tries := 0; tries < 4*n; tries++ {
		i := rng.Intn(n)
		if !skip.has(i) {
			return i
		}
	}
	return -1
}

// greedy search bounds, keeping the hypothetical policy tractable: the paper
// itself caps inputs at 400 samples "for 'optimal greedy' to be feasible".
const (
	greedyMaxCandidates = 64
	greedyMaxEval       = 400
)

// greedyCandidatePool fills buf with the non-skipped sample indices ordered
// by descending predictive variance, capped at greedyMaxCandidates —
// evaluating every sample is prohibitive even for the reference policy. The
// pool is shared by the rank-1 fast path and the clone-based reference so the
// two consider identical candidates.
func greedyCandidatePool(vars []float64, skip *markSet, buf *[]int) []int {
	ids := (*buf)[:0]
	for i := range vars {
		if !skip.has(i) {
			ids = append(ids, i)
		}
	}
	*buf = ids
	if len(ids) == 0 {
		return ids
	}
	sort.Slice(ids, func(a, b int) bool { return vars[ids[a]] > vars[ids[b]] })
	if len(ids) > greedyMaxCandidates {
		ids = ids[:greedyMaxCandidates]
	}
	return ids
}

// pickOptimalGreedy simulates adding each candidate sample — using the
// current posterior mean as its hypothetical observation — recomputes the
// error bound, and picks the candidate with the largest bound reduction.
//
// The simulation is exact but clone-free: bordering the local system with
// candidate x_c changes the posterior at x_j by a closed-form rank-1 term in
// the posterior covariance c_j = k(x_c,x_j) − k_jᵀK⁻¹k_c (gp.PosteriorCovWith
// is the same quantity on the global model). With s_c the candidate's
// predictive variance plus noise (the bordered factor's Schur complement),
// m̂ the local-solve means and m_c the hypothetical observation,
//
//	v₂[j] = vars[j] − c_j²/s_c
//	m₂[j] = m̂_j + (m_c − m̂_c)·c_j/s_c
//
// so each candidate costs one O(l²) solve plus an O(eval·l) covariance pass,
// instead of the reference's Clone+Extend+SolveVec+full re-predict at
// O(eval·l²) per candidate — see pickOptimalGreedyClone, retained as the
// differential-test and benchmark reference.
func (e *Evaluator) pickOptimalGreedy(samples [][]float64, means, vars []float64,
	lc *localCtx, lambda, zAlpha float64, skip *markSet, rng *rand.Rand) int {
	sc := &e.scratch
	cands := greedyCandidatePool(vars, skip, &sc.tuneCands)
	if len(cands) == 0 {
		return -1
	}
	evalIdx := subsampleIndices(len(samples), greedyMaxEval, rng)
	best, _ := e.greedyBestRank1(samples, means, vars, lc, lambda, zAlpha, cands, evalIdx)
	if best < 0 {
		// All simulations failed numerically; fall back to max variance.
		return pickMaxVariance(vars, skip)
	}
	return best
}

// greedyBestRank1 evaluates every candidate via the rank-1 posterior update
// and returns the one minimizing the simulated error bound, along with that
// bound (-1, +Inf if none is numerically admissible). Steady state performs
// no heap allocation.
func (e *Evaluator) greedyBestRank1(samples [][]float64, means, vars []float64,
	lc *localCtx, lambda, zAlpha float64, cands, evalIdx []int) (int, float64) {
	sc := &e.scratch
	l := len(lc.ids)
	ne := len(evalIdx)

	// Local observations and local-solve weights α_L = K_L⁻¹ y_L, the
	// candidate-independent half of the simulated system.
	yLocal := resizeFloats(&sc.tuneY, l)
	for i, id := range lc.ids {
		yLocal[i] = e.g.Y(id)
	}
	alphaLoc := resizeFloats(&sc.tuneAlpha, l)
	if l > 0 {
		lc.chol.SolveVecTo(alphaLoc, yLocal)
	}

	// Per-evaluation-point cross rows K_eval[j] = k(x_j, X_L) — one batched
	// kernel row each — and the trial-independent local-solve means m̂_j.
	evalXs := resizeRows(&sc.tuneEvalXs, ne)
	for j, si := range evalIdx {
		evalXs[j] = samples[si]
	}
	if sc.tuneCross == nil {
		sc.tuneCross = mat.New(ne, l)
	} else {
		sc.tuneCross.Reset(ne, l)
	}
	cross := sc.tuneCross
	mhat := resizeFloats(&sc.tuneMHat, ne)
	for j := 0; j < ne; j++ {
		row := cross.Row(j)
		kernel.CrossVec(e.cfg.Kernel, lc.xs, evalXs[j], row)
		mhat[j] = mat.Dot(row, alphaLoc)
	}

	m2 := resizeFloats(&sc.tuneMeans, ne)
	v2 := resizeFloats(&sc.tuneVars, ne)
	kc := resizeFloats(&sc.tuneK, l)
	uc := resizeFloats(&sc.tuneU, l)
	cc := resizeFloats(&sc.tuneCC, ne)
	noise := e.g.Noise()
	best, bestBound := -1, math.Inf(1)
	for _, ci := range cands {
		xc := samples[ci]
		kernel.CrossVec(e.cfg.Kernel, lc.xs, xc, kc)
		copy(uc, kc)
		if l > 0 {
			lc.chol.SolveVecTo(uc, uc)
		}
		sC := e.cfg.Kernel.Eval(xc, xc) + noise - mat.Dot(kc, uc)
		if sC <= 0 || math.IsNaN(sC) {
			continue // the bordered system is not SPD; matches Extend failing
		}
		dm := (means[ci] - mat.Dot(kc, alphaLoc)) / sC
		invS := 1 / sC
		kernel.CrossVec(e.cfg.Kernel, evalXs, xc, cc)
		for j := 0; j < ne; j++ {
			cj := cc[j] - mat.Dot(cross.Row(j), uc)
			m2[j] = mhat[j] + dm*cj
			v := vars[evalIdx[j]] - cj*cj*invS
			if v < 0 {
				v = 0
			}
			v2[j] = v
		}
		envTrial := sc.tuneEnv.envelopeOf(m2, v2, zAlpha, ne)
		b := envTrial.DiscrepancyBoundWith(&sc.bound, lambda)
		if b < bestBound {
			best, bestBound = ci, b
		}
	}
	return best, bestBound
}

// greedyBestClone is the reference implementation the rank-1 fast path
// replaced: per candidate it clones the local Cholesky factor, extends it
// with the candidate, re-solves for the trial weights, and re-predicts every
// evaluation point through the bordered factor — O(eval·l²) per candidate.
// It is retained (not test-gated) as the ground truth for the old-vs-new
// equivalence tests and the tuning_pick_clone benchmark baseline.
func (e *Evaluator) greedyBestClone(samples [][]float64, means, vars []float64,
	lc *localCtx, lambda, zAlpha float64, cands, evalIdx []int) (int, float64) {
	sc := &e.scratch
	yLocal := resizeFloats(&sc.tuneY, len(lc.ids))
	for i, id := range lc.ids {
		yLocal[i] = e.g.Y(id)
	}
	best, bestBound := -1, math.Inf(1)
	var kbuf, fsbuf, ys []float64
	m2 := resizeFloats(&sc.tuneMeans, len(evalIdx))
	v2 := resizeFloats(&sc.tuneVars, len(evalIdx))
	for _, ci := range cands {
		xc := samples[ci]
		// Extend a copy of the local factorization with the candidate.
		trial := lc.chol.Clone()
		kvec := kernel.CrossVec(e.cfg.Kernel, lc.xs, xc, kbuf)
		kbuf = kvec
		if err := trial.Extend(kvec, e.cfg.Kernel.Eval(xc, xc)+e.g.Noise()); err != nil {
			continue
		}
		ys = append(append(ys[:0], yLocal...), means[ci])
		alphaTrial := trial.SolveVec(ys)
		xsTrial := append(append([][]float64(nil), lc.xs...), xc)
		// Recompute means/vars on the evaluation subset.
		for j, si := range evalIdx {
			x := samples[si]
			kbuf = kernel.CrossVec(e.cfg.Kernel, xsTrial, x, kbuf)
			m2[j] = mat.Dot(kbuf, alphaTrial)
			fsbuf = resizeFloatsVal(fsbuf, len(kbuf))
			trial.ForwardSolveTo(fsbuf, kbuf)
			vv := e.cfg.Kernel.Eval(x, x) - mat.Dot(fsbuf, fsbuf)
			if vv < 0 {
				vv = 0
			}
			v2[j] = vv
		}
		envTrial := sc.tuneEnv.envelopeOf(m2, v2, zAlpha, len(evalIdx))
		b := envTrial.DiscrepancyBoundWith(&sc.bound, lambda)
		if b < bestBound {
			best, bestBound = ci, b
		}
	}
	return best, bestBound
}

// subsampleIndices returns up to max distinct indices in [0, n).
func subsampleIndices(n, max int, rng *rand.Rand) []int {
	if n <= max {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := rng.Perm(n)
	out := make([]int, max)
	copy(out, perm[:max])
	return out
}

// PickGreedyForBench rebuilds the local inference context for the samples,
// runs local inference, and executes one optimal-greedy tuning pick — with
// the rank-1 fast path, or with the clone-based reference when useClone is
// set. It is the hook behind the tuning_pick_rank1/tuning_pick_clone
// benchmarks and the old-vs-new equivalence tests; both paths see identical
// candidate pools and evaluation subsets for a given rng state.
func (e *Evaluator) PickGreedyForBench(samples [][]float64, rng *rand.Rand, useClone bool) (int, error) {
	sc := &e.scratch
	ids, gamma := e.selectLocal(samples, e.gammaThreshold())
	lc := &sc.lc
	if err := e.buildLocal(lc, ids, gamma); err != nil {
		return -1, err
	}
	m := len(samples)
	means := resizeFloats(&sc.means, m)
	vars := resizeFloats(&sc.vars, m)
	lc.predictInto(e, samples, means, vars, 0, m)
	zA := e.zAlpha(rtree.BoundingBox(samples))
	lambda := e.lambda(means)
	sc.skip.reset(m)
	cands := greedyCandidatePool(vars, &sc.skip, &sc.tuneCands)
	evalIdx := subsampleIndices(m, greedyMaxEval, rng)
	if useClone {
		best, _ := e.greedyBestClone(samples, means, vars, lc, lambda, zA, cands, evalIdx)
		return best, nil
	}
	best, _ := e.greedyBestRank1(samples, means, vars, lc, lambda, zA, cands, evalIdx)
	return best, nil
}
