package core

import (
	"olgapro/internal/ecdf"
)

// Output is the result of evaluating one uncertain input tuple.
type Output struct {
	// Dist is the returned approximate output distribution Ŷ′ (nil when the
	// tuple was filtered).
	Dist *ecdf.ECDF
	// Envelope carries the three CDFs (mean, lower, upper) behind the error
	// bound; nil when filtered.
	Envelope *ecdf.Envelope

	// BoundGP is the final λ-discrepancy bound ε̂_GP from Algorithm 3.
	BoundGP float64
	// BoundMC is the Monte-Carlo sampling error budget ε_MC.
	BoundMC float64
	// Bound is the total error bound ε̂_GP + ε_MC of Theorem 4.1, valid with
	// probability (1−δ_MC)(1−δ_GP) ≥ 1−δ.
	Bound float64
	// MetBudget reports whether BoundGP converged under the ε_GP budget
	// within the per-input training cap.
	MetBudget bool

	// Lambda is the absolute minimum interval length used for the bound.
	Lambda float64
	// ZAlpha is the simultaneous confidence band multiplier used.
	ZAlpha float64

	// Filtered reports that the tuple was dropped by the predicate filter,
	// with TEPUpper its existence-probability upper bound at that moment.
	Filtered bool
	// TEPLower and TEPUpper bound the tuple existence probability
	// Pr[f(X) ∈ [A,B]] when a predicate is configured.
	TEPLower, TEPUpper float64

	// Samples is the number of Monte-Carlo input samples drawn.
	Samples int
	// SamplesInferred is how many of them went through GP inference (fewer
	// than Samples when online filtering stops early).
	SamplesInferred int
	// UDFCalls is the number of true UDF evaluations this input caused.
	UDFCalls int
	// PointsAdded is the number of training points online tuning added.
	PointsAdded int
	// LocalPoints is the size of the local-inference subset used (equals
	// the full training set under global inference).
	LocalPoints int
	// Retrained reports whether hyperparameter retraining ran.
	Retrained bool
	// Engine identifies which engine produced this output. Evaluator and
	// the query-layer adapters stamp it, so hybrid routing decisions are
	// never silently dropped.
	Engine Engine
}

// Stats aggregates evaluator activity across Eval calls.
type Stats struct {
	Inputs         int // Eval calls
	TrainingPoints int // current training-set size
	UDFCalls       int // total UDF evaluations
	PointsAdded    int // total training points added by tuning
	Retrainings    int // total retraining runs
	Filtered       int // tuples dropped by the predicate filter
}
