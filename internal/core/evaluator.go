package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"olgapro/internal/band"
	"olgapro/internal/dist"
	"olgapro/internal/ecdf"
	"olgapro/internal/gp"
	"olgapro/internal/mc"
	"olgapro/internal/rtree"
	"olgapro/internal/udf"
)

// Evaluator runs OLGAPRO (Algorithm 5) for one black-box UDF: it owns the
// GP emulator, the R-tree over training points, and the accuracy budgets,
// and processes a stream of uncertain input tuples via Eval.
//
// An Evaluator is not safe for concurrent use; run one per goroutine.
type Evaluator struct {
	cfg Config
	f   udf.Func
	// Exactly one of g (exact, O(n²)-per-add) and sg (budgeted sparse,
	// O(m²)-per-add) is non-nil; model is whichever is active. The R-tree
	// only backs local-subset selection, which the sparse path bypasses.
	g     *gp.GP
	sg    *gp.Sparse
	model gp.Model
	tree  rtree.Tree

	epsMC, epsGP     float64
	deltaMC, deltaGP float64
	samples          int // Monte-Carlo samples per input

	yMin, yMax float64
	haveY      bool

	stats Stats

	// scratch is the persistent workspace behind the near-zero-allocation
	// hot path; see evalScratch. Its presence is why an Evaluator must not
	// be shared between goroutines.
	scratch evalScratch
}

// NewEvaluator validates the configuration and returns an evaluator with an
// empty training set ("starting with no training points", §5.2).
func NewEvaluator(f udf.Func, cfg Config) (*Evaluator, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if f == nil || f.Dim() <= 0 {
		return nil, errors.New("core: evaluator needs a UDF with positive dimension")
	}
	e := &Evaluator{cfg: cfg, f: f}
	if cfg.SparseBudget > 0 {
		sg, err := gp.NewSparse(cfg.Kernel, cfg.Noise, gp.SparseConfig{
			Budget:    cfg.SparseBudget,
			Inflate:   cfg.SparseInflate,
			SwapEvery: cfg.SparseSwapEvery,
		})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		e.sg, e.model = sg, sg
	} else {
		e.g = gp.New(cfg.Kernel, cfg.Noise)
		e.model = e.g
	}
	e.epsMC, e.epsGP, e.deltaMC, e.deltaGP = cfg.Split()
	e.samples = mc.SampleSize(e.epsMC, e.deltaMC, mc.MetricDiscrepancy)
	if cfg.SampleOverride > 0 {
		e.samples = cfg.SampleOverride
	}
	return e, nil
}

// Stats returns aggregate counters.
func (e *Evaluator) Stats() Stats {
	s := e.stats
	s.TrainingPoints = e.model.Len()
	return s
}

// GP exposes the underlying exact Gaussian process (read-mostly; used by the
// benchmark harness and tests). It is nil when the evaluator runs the
// budgeted sparse emulator — use Model or Sparse then.
func (e *Evaluator) GP() *gp.GP { return e.g }

// Sparse exposes the budgeted sparse emulator, nil on the exact path.
func (e *Evaluator) Sparse() *gp.Sparse { return e.sg }

// Model exposes whichever emulator is active.
func (e *Evaluator) Model() gp.Model { return e.model }

// Points returns the number of absorbed training points on either path.
func (e *Evaluator) Points() int { return e.model.Len() }

// SampleBudget returns the per-input Monte-Carlo sample count m.
func (e *Evaluator) SampleBudget() int { return e.samples }

// Config returns the normalized configuration in effect.
func (e *Evaluator) Config() Config { return e.cfg }

// AddTrainingAt evaluates the UDF at x and adds the pair to the model. It is
// the bootstrap hook experiments use to start with n initial points.
func (e *Evaluator) AddTrainingAt(x []float64) error {
	return e.addPoint(x, nil)
}

// addPoint evaluates the UDF at x and adds the result as a training point,
// updating the R-tree, output range, and counters (out may be nil).
func (e *Evaluator) addPoint(x []float64, out *Output) error {
	y := e.f.Eval(x)
	e.stats.UDFCalls++
	if out != nil {
		out.UDFCalls++
	}
	if math.IsNaN(y) || math.IsInf(y, 0) {
		// A single bad observation would poison α and every subsequent
		// posterior; reject it loudly instead.
		return fmt.Errorf("core: UDF returned %g at %v", y, x)
	}
	if err := e.model.Add(x, y); err != nil {
		return err
	}
	if e.g != nil {
		// The R-tree only serves local-subset selection on the exact path;
		// the sparse model's inducing set is its own spatial summary.
		id := e.g.Len() - 1
		if err := e.tree.Insert(e.g.X(id), id); err != nil {
			return fmt.Errorf("core: index insert: %w", err)
		}
	}
	if !e.haveY || y < e.yMin {
		e.yMin = y
	}
	if !e.haveY || y > e.yMax {
		e.yMax = y
	}
	e.haveY = true
	e.stats.PointsAdded++
	if out != nil {
		out.PointsAdded++
	}
	return nil
}

// outputRange estimates the spread of the UDF's output from the training
// observations, used to scale λ and Γ, which the paper sets as percentages
// of the function range.
func (e *Evaluator) outputRange() float64 {
	if !e.haveY {
		return 1
	}
	if r := e.yMax - e.yMin; r > 1e-12 {
		return r
	}
	return math.Max(math.Abs(e.yMax), 1e-9)
}

func (e *Evaluator) gammaThreshold() float64 {
	if e.cfg.Gamma > 0 {
		return e.cfg.Gamma
	}
	return e.cfg.GammaFrac * e.outputRange()
}

func (e *Evaluator) lambda(means []float64) float64 {
	if e.cfg.Lambda > 0 {
		return e.cfg.Lambda
	}
	r := e.outputRange()
	if len(means) > 0 {
		lo, hi := means[0], means[0]
		for _, v := range means[1:] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		r = math.Max(r, hi-lo)
	}
	return math.Max(e.cfg.LambdaFrac*r, 1e-12)
}

// zAlpha computes the simultaneous band multiplier over the sample box.
func (e *Evaluator) zAlpha(box rtree.Rect) float64 {
	return band.ZAlphaForKernel(e.deltaGP, e.cfg.Kernel, box.Lo, box.Hi)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Eval processes one uncertain input tuple and returns its approximate
// output distribution with an error bound (Algorithm 5). The Monte-Carlo
// sample matrix is drawn into one flat, evaluator-owned backing array that
// is reused by the next Eval call.
func (e *Evaluator) Eval(input dist.Vector, rng *rand.Rand) (*Output, error) {
	if input.Dim() != e.f.Dim() {
		return nil, fmt.Errorf("core: input dim %d ≠ UDF dim %d", input.Dim(), e.f.Dim())
	}
	// Step 1: draw the Monte-Carlo input samples.
	sc := &e.scratch
	m, d := e.samples, e.f.Dim()
	data := resizeFloats(&sc.sampleData, m*d)
	if cap(sc.samples) < m {
		sc.samples = make([][]float64, m)
	}
	sc.samples = sc.samples[:m]
	for i := range sc.samples {
		row := data[i*d : (i+1)*d : (i+1)*d]
		sc.samples[i] = input.SampleVec(rng, row)
	}
	return e.EvalSamples(sc.samples, rng)
}

// EvalSamples runs Algorithm 5 on pre-drawn input samples. Callers that
// evaluate several UDFs (or output components) on the same uncertain tuple
// can share one sample set across them — MultiEvaluator relies on this so
// its per-component training points coincide and the vector-UDF cache pays
// for each point once. The samples must not be mutated afterwards.
func (e *Evaluator) EvalSamples(samples [][]float64, rng *rand.Rand) (*Output, error) {
	if len(samples) == 0 {
		return nil, errors.New("core: EvalSamples needs at least one sample")
	}
	if len(samples[0]) != e.f.Dim() {
		return nil, fmt.Errorf("core: sample dim %d ≠ UDF dim %d", len(samples[0]), e.f.Dim())
	}
	e.stats.Inputs++
	m := len(samples)
	out := &Output{BoundMC: e.epsMC, Samples: m, Engine: EngineGP}
	sc := &e.scratch

	// Bootstrap: the online algorithm needs at least two observations to
	// know anything about the output scale.
	if err := e.bootstrap(samples, out); err != nil {
		return nil, err
	}

	// Step 2: local inference subset around the sample bounding box. On the
	// sparse path the inducing set IS the sparsity — every prediction is
	// already O(budget²) — so R-tree subset selection is bypassed and the
	// local context routes predictions straight to the sparse model.
	box := sc.box.bounding(samples)
	lc := &sc.lc
	if e.sg != nil {
		lc.bindSparse(e.sg)
	} else {
		ids, gamma := e.selectLocal(samples, e.gammaThreshold())
		if err := e.buildLocal(lc, ids, gamma); err != nil {
			return nil, err
		}
	}

	means := resizeFloats(&sc.means, m)
	vars := resizeFloats(&sc.vars, m)
	zA := e.zAlpha(box)

	// Steps 3–4 (filtering fast path): run inference in chunks and drop the
	// tuple as soon as its TEP upper bound is confidently below θ (§5.5).
	processed := 0
	if e.cfg.Predicate != nil {
		pred := e.cfg.Predicate
		checking := true
		for processed < m {
			hi := processed + e.cfg.FilterChunk
			if hi > m {
				hi = m
			}
			lc.predictInto(e, samples, means, vars, processed, hi)
			processed = hi
			if !checking {
				continue
			}
			env := sc.env.envelopeOf(means, vars, zA, processed)
			rhoU := clamp01(env.Lower.CDF(pred.B) - env.Upper.CDF(pred.A))
			if rhoU+mc.HoeffdingRadius(processed, e.deltaMC) < pred.Theta {
				if !e.cfg.FilterTrustModel {
					ok, err := e.verifyFilter(samples, means, vars, lc, zA, processed, out, rng)
					if err != nil {
						return nil, err
					}
					if !ok {
						// The emulator was wrong here; a training point was
						// added. Stop filter checks and process fully so
						// online tuning can learn this region.
						lc.predictInto(e, samples, means, vars, 0, processed)
						checking = false
						continue
					}
				}
				out.Filtered = true
				out.SamplesInferred = processed
				out.TEPUpper = rhoU
				out.LocalPoints = e.localPoints(lc)
				out.ZAlpha = zA
				e.stats.Filtered++
				return out, nil
			}
		}
	} else {
		lc.predictInto(e, samples, means, vars, 0, m)
		processed = m
	}
	out.SamplesInferred = processed

	// Steps 5–7: error-bound loop with online tuning.
	lambda := e.lambda(means)
	out.Lambda = lambda
	sc.skip.reset(m)
	var env ecdf.Envelope
	var boundGP float64
	for iter := 0; ; iter++ {
		env = sc.env.envelopeOf(means, vars, zA, m)
		boundGP = env.DiscrepancyBoundWith(&sc.bound, lambda)
		if boundGP <= e.epsGP {
			out.MetBudget = true
			break
		}
		if iter >= e.cfg.MaxAddPerInput {
			break
		}
		idx := e.pickSample(samples, means, vars, lc, lambda, zA, &sc.skip, rng)
		if idx < 0 {
			break
		}
		sc.skip.add(idx)
		if err := e.addPoint(samples[idx], out); err != nil {
			if errors.Is(err, gp.ErrDuplicatePoint) {
				continue // try a different sample next iteration
			}
			return nil, err
		}
		if e.g != nil {
			// The sparse model self-updates on Add; only the exact path's
			// local factorization needs the incremental extension.
			newID := e.g.Len() - 1
			if err := lc.extend(e, newID); err != nil {
				// Fall back to a full rebuild if the incremental update failed.
				if err := e.rebuildLocal(lc, samples); err != nil {
					return nil, err
				}
			}
		}
		// α changed globally, so every sample's mean and variance moves.
		lc.predictInto(e, samples, means, vars, 0, m)
	}

	// Steps 8–14: retraining decision.
	if out.PointsAdded > 0 && e.cfg.Retrain != RetrainNever {
		retrain := e.cfg.Retrain == RetrainEager
		if !retrain {
			retrain = e.model.NewtonStep() > e.cfg.DeltaTheta
		}
		if retrain {
			if _, err := e.model.Train(gp.TrainConfig{MaxIter: e.cfg.TrainMaxIter}); err != nil {
				return nil, fmt.Errorf("core: retrain: %w", err)
			}
			e.stats.Retrainings++
			out.Retrained = true
			// Rerun inference under the new hyperparameters.
			if err := e.rebuildLocal(lc, samples); err != nil {
				return nil, err
			}
			lc.predictInto(e, samples, means, vars, 0, m)
			zA = e.zAlpha(box)
			env = sc.env.envelopeOf(means, vars, zA, m)
			boundGP = env.DiscrepancyBoundWith(&sc.bound, lambda)
			out.MetBudget = boundGP <= e.epsGP
		}
	}

	// Final TEP bounds and late filtering.
	if e.cfg.Predicate != nil {
		pred := e.cfg.Predicate
		lo, _, hi := env.IntervalBounds(pred.A, pred.B)
		out.TEPLower, out.TEPUpper = lo, hi
		if hi < pred.Theta {
			out.Filtered = true
			e.stats.Filtered++
			out.LocalPoints = e.localPoints(lc)
			out.ZAlpha = zA
			return out, nil
		}
	}

	// The envelope built so far aliases scratch reused by the next Eval;
	// hand the caller an owned copy.
	owned := ownedEnvelope(env)
	out.Dist = owned.Mean
	out.Envelope = &owned
	out.BoundGP = boundGP
	out.Bound = boundGP + e.epsMC
	out.ZAlpha = zA
	out.LocalPoints = e.localPoints(lc)
	return out, nil
}

// localPoints reports how many model points backed this tuple's inference:
// the local subset size on the exact path, the inducing-set size on the
// sparse path.
func (e *Evaluator) localPoints(lc *localCtx) int {
	if e.sg != nil {
		return e.sg.InducingLen()
	}
	return len(lc.ids)
}

// bootstrap seeds the model with two well-separated samples when the
// training set is (nearly) empty.
func (e *Evaluator) bootstrap(samples [][]float64, out *Output) error {
	if e.model.Len() >= 2 {
		return nil
	}
	if e.model.Len() == 0 {
		if err := e.addPoint(samples[0], out); err != nil {
			return err
		}
	}
	// Farthest sample from the first training point.
	ref := e.model.X(0)
	bestIdx, bestDist := -1, -1.0
	for i, s := range samples {
		var d float64
		for j := range s {
			dd := s[j] - ref[j]
			d += dd * dd
		}
		if d > bestDist {
			bestIdx, bestDist = i, d
		}
	}
	if bestIdx >= 0 {
		if err := e.addPoint(samples[bestIdx], out); err != nil && !errors.Is(err, gp.ErrDuplicatePoint) {
			return err
		}
	}
	return nil
}

// EvalLambda runs Eval with a temporary absolute λ override, used by the
// error-bound profiling experiments to sweep λ on one converged model.
func (e *Evaluator) EvalLambda(input dist.Vector, lambda float64, rng *rand.Rand) (*Output, error) {
	old := e.cfg.Lambda
	e.cfg.Lambda = lambda
	defer func() { e.cfg.Lambda = old }()
	return e.Eval(input, rng)
}

// verifyFilter spot-checks a pending filter decision with true UDF calls at
// (a) the processed sample the model considers most likely to satisfy the
// predicate, (b) the sample the model knows least about (largest predictive
// variance), and (c) one uniformly random sample — a confidently wrong
// model ranks (a) arbitrarily and (b) may share its blind spot, while (c)
// hits the predicate range with probability at least the tuple's true TEP.
// It returns true when every observation is consistent with the confidence
// envelope and outside the predicate range (filtering may proceed).
// Otherwise the observation becomes training data and it returns false.
func (e *Evaluator) verifyFilter(samples [][]float64, means, vars []float64,
	lc *localCtx, zA float64, processed int, out *Output, rng *rand.Rand) (bool, error) {
	pred := e.cfg.Predicate
	best, bestGap := -1, math.Inf(1)
	maxVarIdx, maxVar := -1, -1.0
	for i := 0; i < processed; i++ {
		sd := math.Sqrt(vars[i])
		upper := means[i] + zA*sd
		lower := means[i] - zA*sd
		var gap float64
		switch {
		case upper < pred.A:
			gap = pred.A - upper
		case lower > pred.B:
			gap = lower - pred.B
		default:
			gap = 0
		}
		if gap < bestGap {
			best, bestGap = i, gap
		}
		if vars[i] > maxVar {
			maxVarIdx, maxVar = i, vars[i]
		}
	}
	if best < 0 {
		return true, nil
	}
	var checks [3]int
	nchecks := 0
	checks[nchecks] = best
	nchecks++
	if maxVarIdx >= 0 && maxVarIdx != best {
		checks[nchecks] = maxVarIdx
		nchecks++
	}
	// A model-independent probe: if the tuple truly satisfies the predicate
	// with probability ≥ θ, a uniformly random sample lands in the
	// predicate range with at least that probability — catching exactly the
	// failures the model-guided probes share blind spots on.
	if r := rng.Intn(processed); r != best && r != maxVarIdx {
		checks[nchecks] = r
		nchecks++
	}
	slack := 1e-9 + 0.01*e.outputRange()
	var x []float64
	var y float64
	failed := false
	for _, idx := range checks[:nchecks] {
		x = samples[idx]
		y = e.f.Eval(x)
		e.stats.UDFCalls++
		out.UDFCalls++
		sd := math.Sqrt(vars[idx])
		consistent := math.Abs(y-means[idx]) <= zA*sd+slack
		inRange := y >= pred.A && y <= pred.B
		if !consistent || inRange {
			failed = true
			break
		}
	}
	if !failed {
		return true, nil
	}
	// The observation is informative: keep it as a training point. A
	// duplicate here just means the model already has this point, in which
	// case the envelope disagreement is irreducible noise — still process
	// the tuple fully rather than risk a false drop.
	if err := e.model.Add(x, y); err == nil {
		if y < e.yMin {
			e.yMin = y
		}
		if y > e.yMax {
			e.yMax = y
		}
		e.stats.PointsAdded++
		out.PointsAdded++
		if e.g != nil {
			id := e.g.Len() - 1
			if err := e.tree.Insert(e.g.X(id), id); err != nil {
				return false, fmt.Errorf("core: index insert: %w", err)
			}
			if lerr := lc.extend(e, id); lerr != nil {
				// Rebuild lazily: the caller re-runs predictInto which only
				// needs a valid factorization; rebuild the local model now.
				if berr := e.rebuildLocal(lc, samples); berr != nil {
					return false, berr
				}
			}
		}
	}
	return false, nil
}
