package dist

import (
	"math"
	"math/rand"
)

// Normal is the Gaussian N(Mu, Sigma²), the paper's default model for
// measurement error on catalog attributes ("the objects ... are commonly
// Gaussian distributions", §1). Sigma = 0 degenerates gracefully to a point
// mass at Mu.
type Normal struct {
	Mu    float64 // mean
	Sigma float64 // standard deviation, ≥ 0
}

// Sample draws from N(Mu, Sigma²).
func (n Normal) Sample(rng *rand.Rand) float64 {
	if n.Sigma <= 0 {
		return n.Mu
	}
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// PDF returns the Gaussian density at x.
func (n Normal) PDF(x float64) float64 {
	if n.Sigma <= 0 {
		return Constant{V: n.Mu}.PDF(x)
	}
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-z*z/2) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns Φ((x−Mu)/Sigma) via erfc, which keeps full relative accuracy
// in the far tails where 1−erf collapses to 0.
func (n Normal) CDF(x float64) float64 {
	if n.Sigma <= 0 {
		return Constant{V: n.Mu}.CDF(x)
	}
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Mean returns Mu.
func (n Normal) Mean() float64 { return n.Mu }

// Variance returns Sigma², or 0 for the Sigma ≤ 0 point-mass reading.
func (n Normal) Variance() float64 {
	if n.Sigma <= 0 {
		return 0
	}
	return n.Sigma * n.Sigma
}

// Support returns (−Inf, +Inf), or the atom for Sigma = 0.
func (n Normal) Support() (lo, hi float64) {
	if n.Sigma <= 0 {
		return n.Mu, n.Mu
	}
	return math.Inf(-1), math.Inf(1)
}

// StdNormalQuantile returns Φ⁻¹(p), the standard normal quantile. It is
// computed as √2·erfinv(2p−1); the stdlib erfinv is accurate to a few ulps,
// far inside the |Φ(Φ⁻¹(p)) − p| < 1e−9 round-trip the confidence-band code
// needs. Out-of-range p returns ±Inf at the endpoints and NaN outside [0, 1].
func StdNormalQuantile(p float64) float64 {
	switch {
	case p < 0 || p > 1 || math.IsNaN(p):
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}
	return math.Sqrt2 * math.Erfinv(2*p-1)
}
