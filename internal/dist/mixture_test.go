package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestMixtureValidation(t *testing.T) {
	if _, err := NewMixture(nil); err == nil {
		t.Fatal("empty mixture accepted")
	}
	if _, err := NewMixture([]float64{1, 2}, Normal{Mu: 0, Sigma: 1}); err == nil {
		t.Fatal("weight/component length mismatch accepted")
	}
	if _, err := NewMixture([]float64{-1}, Normal{Mu: 0, Sigma: 1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewMixture([]float64{1}, nil); err == nil {
		t.Fatal("nil component accepted")
	}
}

func TestMixtureMoments(t *testing.T) {
	m, err := NewMixture([]float64{1, 3},
		Normal{Mu: -2, Sigma: 0.5}, Normal{Mu: 2, Sigma: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Weights normalize to 1/4, 3/4.
	wantMean := 0.25*-2 + 0.75*2
	if got := m.Mean(); math.Abs(got-wantMean) > 1e-12 {
		t.Fatalf("mean %g, want %g", got, wantMean)
	}
	wantVar := 0.25*(0.25+4) + 0.75*(1+4) - wantMean*wantMean
	if got := m.Variance(); math.Abs(got-wantVar) > 1e-12 {
		t.Fatalf("variance %g, want %g", got, wantVar)
	}
	// CDF is the weighted sum: at 0 the first component has passed nearly
	// all its mass (w₁ ≈ 0.25) and the second contributes 0.75·Φ(−2).
	mid := m.CDF(0)
	want := 0.25*(Normal{Mu: -2, Sigma: 0.5}).CDF(0) + 0.75*(Normal{Mu: 2, Sigma: 1}).CDF(0)
	if math.Abs(mid-want) > 1e-12 {
		t.Fatalf("CDF(0) = %g, want %g", mid, want)
	}
	if m.CDF(math.Inf(1)) != 1 || m.CDF(math.Inf(-1)) != 0 {
		t.Fatal("CDF tails wrong")
	}
}

func TestMixtureSampleAgreesWithCDF(t *testing.T) {
	m, err := NewMixture([]float64{0.3, 0.7},
		Uniform{A: 0, B: 1}, Gamma{K: 2, Theta: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	for _, q := range []float64{0.5, 1.0, 2.0, 5.0} {
		count := 0
		rng2 := rand.New(rand.NewSource(7))
		for i := 0; i < n; i++ {
			if m.Sample(rng2) <= q {
				count++
			}
		}
		emp := float64(count) / n
		if diff := math.Abs(emp - m.CDF(q)); diff > 0.01 {
			t.Fatalf("at %g: empirical CDF %g vs analytic %g (diff %g)", q, emp, m.CDF(q), diff)
		}
	}
	_ = rng
}

func TestMixtureSupport(t *testing.T) {
	m, err := NewMixture(nil, Uniform{A: -3, B: -1}, Uniform{A: 2, B: 5})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := m.Support()
	if lo != -3 || hi != 5 {
		t.Fatalf("support (%g,%g), want (-3,5)", lo, hi)
	}
	if m.PDF(0) != 0 {
		t.Fatalf("PDF in the gap = %g, want 0", m.PDF(0))
	}
	if m.PDF(-2) <= 0 || m.PDF(3) <= 0 {
		t.Fatal("PDF zero inside a component")
	}
}

func TestMixtureEqualWeightsDefault(t *testing.T) {
	m, err := NewMixture(nil, Constant{V: 1}, Constant{V: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Mean(); got != 2 {
		t.Fatalf("equal-weight mean %g, want 2", got)
	}
	if _, w := m.Component(0); w != 0.5 {
		t.Fatalf("weight %g, want 0.5", w)
	}
}
