// Package dist models uncertain scalar attributes as univariate probability
// distributions and uncertain tuples as multivariate random vectors (paper
// §2.1: "an uncertain input tuple modeled as a random vector X").
//
// The package has two layers:
//
//   - Dist, a closed interface over the concrete scalar families Normal,
//     Uniform, Gamma, Exponential, and Constant. Every operation that needs
//     randomness takes an injected *rand.Rand so callers control determinism
//     (the engines replay seeds in tests and benchmarks).
//   - Vector, the joint distribution of a whole input tuple. The only
//     composition the paper needs is the independent product (per-attribute
//     measurement errors are modeled independently), provided by Independent
//     and the IsoGaussianVec convenience for N(μ, σ²I) inputs.
//
// Everything is pure stdlib; the numeric helpers (StdNormalQuantile, the
// regularized incomplete gamma behind Gamma.CDF) are implemented here.
package dist

import "math/rand"

// Dist is a univariate probability distribution: the model of one uncertain
// scalar attribute. Implementations are small value types, safe to copy and
// to share across goroutines; all randomness flows through the *rand.Rand
// passed to Sample.
type Dist interface {
	// Sample draws one value using rng.
	Sample(rng *rand.Rand) float64
	// PDF returns the probability density at x (for Constant, a point
	// mass, it is +Inf at the atom and 0 elsewhere).
	PDF(x float64) float64
	// CDF returns Pr[X ≤ x].
	CDF(x float64) float64
	// Mean returns E[X].
	Mean() float64
	// Variance returns Var[X].
	Variance() float64
	// Support returns bounds (lo, hi) with Pr[lo ≤ X ≤ hi] = 1; unbounded
	// sides are ±Inf.
	Support() (lo, hi float64)
}

// Sample draws n independent values from d using rng. It is the small
// convenience the generators and tests use to build sample sets without an
// explicit loop.
func Sample(d Dist, n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}
