package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mixture is a finite mixture of scalar distributions: with probability
// Weights[i]/ΣWeights a draw comes from Components[i]. It models multimodal
// uncertain attributes (e.g. a photometric redshift with two plausible
// solutions) that none of the single-family distributions can express, and
// is part of the network wire surface: the serving layer accepts
// {"type":"mixture", ...} input specs.
type Mixture struct {
	comps   []Dist
	weights []float64 // normalized to sum 1
	cum     []float64 // cumulative weights for O(log k) inverse sampling
}

// NewMixture builds a mixture from parallel weight/component slices. Weights
// need not be normalized but must be positive; an empty weights slice means
// equal weights. At least one component is required.
func NewMixture(weights []float64, comps ...Dist) (*Mixture, error) {
	if len(comps) == 0 {
		return nil, fmt.Errorf("dist: mixture needs at least one component")
	}
	if len(weights) == 0 {
		weights = make([]float64, len(comps))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(comps) {
		return nil, fmt.Errorf("dist: mixture has %d weights but %d components", len(weights), len(comps))
	}
	var total float64
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("dist: mixture weight %d is %g, want positive and finite", i, w)
		}
		if comps[i] == nil {
			return nil, fmt.Errorf("dist: mixture component %d is nil", i)
		}
		total += w
	}
	m := &Mixture{
		comps:   append([]Dist(nil), comps...),
		weights: make([]float64, len(weights)),
		cum:     make([]float64, len(weights)),
	}
	var acc float64
	for i, w := range weights {
		m.weights[i] = w / total
		acc += w / total
		m.cum[i] = acc
	}
	m.cum[len(m.cum)-1] = 1 // absorb rounding so the last bucket is closed
	return m, nil
}

// Components returns the number of mixture components.
func (m *Mixture) Components() int { return len(m.comps) }

// Component returns component i and its normalized weight.
func (m *Mixture) Component(i int) (Dist, float64) { return m.comps[i], m.weights[i] }

// Sample draws a component by weight (binary search over the cumulative
// weights), then a value from it.
func (m *Mixture) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.comps) {
		i = len(m.comps) - 1
	}
	return m.comps[i].Sample(rng)
}

// PDF returns the weighted component-density sum.
func (m *Mixture) PDF(x float64) float64 {
	var s float64
	for i, c := range m.comps {
		s += m.weights[i] * c.PDF(x)
	}
	return s
}

// CDF returns the weighted component-CDF sum.
func (m *Mixture) CDF(x float64) float64 {
	var s float64
	for i, c := range m.comps {
		s += m.weights[i] * c.CDF(x)
	}
	return s
}

// Mean returns Σ wᵢ μᵢ.
func (m *Mixture) Mean() float64 {
	var s float64
	for i, c := range m.comps {
		s += m.weights[i] * c.Mean()
	}
	return s
}

// Variance returns the law-of-total-variance form Σ wᵢ(σᵢ² + μᵢ²) − μ².
func (m *Mixture) Variance() float64 {
	mu := m.Mean()
	var s float64
	for i, c := range m.comps {
		ci := c.Mean()
		s += m.weights[i] * (c.Variance() + ci*ci)
	}
	return s - mu*mu
}

// Support returns the union hull of the component supports.
func (m *Mixture) Support() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, c := range m.comps {
		clo, chi := c.Support()
		lo = math.Min(lo, clo)
		hi = math.Max(hi, chi)
	}
	return lo, hi
}
