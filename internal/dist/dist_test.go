package dist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// moments draws n samples and returns the sample mean and variance.
func moments(t *testing.T, d Dist, n int, seed int64) (mean, variance float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := d.Sample(rng)
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

// scalarCases enumerates one representative of each family with its
// closed-form moments and a few CDF checkpoints.
var scalarCases = []struct {
	name     string
	d        Dist
	mean     float64
	variance float64
	lo, hi   float64 // expected Support
	cdfAt    []struct{ x, want float64 }
}{
	{
		name: "normal standard", d: Normal{Mu: 0, Sigma: 1},
		mean: 0, variance: 1, lo: math.Inf(-1), hi: math.Inf(1),
		cdfAt: []struct{ x, want float64 }{
			{0, 0.5},
			{1, 0.8413447460685429},
			{-1.959963984540054, 0.025},
			{6, 0.9999999990134124},
		},
	},
	{
		name: "normal shifted", d: Normal{Mu: 5, Sigma: 0.5},
		mean: 5, variance: 0.25, lo: math.Inf(-1), hi: math.Inf(1),
		cdfAt: []struct{ x, want float64 }{
			{5, 0.5},
			{5.5, 0.8413447460685429},
		},
	},
	{
		name: "uniform unit", d: Uniform{A: 0, B: 1},
		mean: 0.5, variance: 1.0 / 12, lo: 0, hi: 1,
		cdfAt: []struct{ x, want float64 }{
			{-1, 0}, {0.25, 0.25}, {0.5, 0.5}, {2, 1},
		},
	},
	{
		name: "uniform wide", d: Uniform{A: -2, B: 6},
		mean: 2, variance: 64.0 / 12, lo: -2, hi: 6,
		cdfAt: []struct{ x, want float64 }{
			{-2, 0}, {0, 0.25}, {6, 1},
		},
	},
	{
		name: "exponential", d: Exponential{Rate: 2},
		mean: 0.5, variance: 0.25, lo: 0, hi: math.Inf(1),
		cdfAt: []struct{ x, want float64 }{
			{-1, 0},
			{0.5, 1 - math.Exp(-1)},
			{1, 1 - math.Exp(-2)},
		},
	},
	{
		name: "gamma k>1", d: Gamma{K: 2.2, Theta: 0.09, Loc: 0.01},
		mean: 2.2*0.09 + 0.01, variance: 2.2 * 0.09 * 0.09, lo: 0.01, hi: math.Inf(1),
		cdfAt: []struct{ x, want float64 }{
			{0.01, 0},
			// P(2.2, 2.2) verified by independent Simpson integration of
			// the density.
			{0.01 + 2.2*0.09, 0.589646242495},
		},
	},
	{
		name: "gamma k<1", d: Gamma{K: 0.5, Theta: 2, Loc: 0},
		// Gamma(1/2, 2) is χ²(1): mean 1, variance 2.
		mean: 1, variance: 2, lo: 0, hi: math.Inf(1),
		cdfAt: []struct{ x, want float64 }{
			{0, 0},
			// χ²(1) CDF at 1 is erf(1/√2).
			{1, math.Erf(1 / math.Sqrt2)},
			{3.841458820694124, 0.95},
		},
	},
	{
		name: "constant", d: Constant{V: 3},
		mean: 3, variance: 0, lo: 3, hi: 3,
		cdfAt: []struct{ x, want float64 }{
			{2.999, 0}, {3, 1}, {4, 1},
		},
	},
}

func TestScalarClosedForms(t *testing.T) {
	for _, c := range scalarCases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.d.Mean(); math.Abs(got-c.mean) > 1e-12 {
				t.Errorf("Mean = %g, want %g", got, c.mean)
			}
			if got := c.d.Variance(); math.Abs(got-c.variance) > 1e-12 {
				t.Errorf("Variance = %g, want %g", got, c.variance)
			}
			lo, hi := c.d.Support()
			if lo != c.lo || hi != c.hi {
				t.Errorf("Support = (%g, %g), want (%g, %g)", lo, hi, c.lo, c.hi)
			}
			for _, p := range c.cdfAt {
				if got := c.d.CDF(p.x); math.Abs(got-p.want) > 1e-9 {
					t.Errorf("CDF(%g) = %.12g, want %.12g", p.x, got, p.want)
				}
			}
		})
	}
}

// Sample moments must converge to the analytic moments; 200k samples give
// ≈0.5% standard error on the mean for unit-variance families, so a 2%
// relative tolerance (floored for near-zero means) is a stable bar.
func TestSampleMomentsMatch(t *testing.T) {
	const n = 200_000
	for i, c := range scalarCases {
		t.Run(c.name, func(t *testing.T) {
			mean, variance := moments(t, c.d, n, int64(100+i))
			scale := math.Max(math.Abs(c.mean), math.Sqrt(c.variance))
			tol := math.Max(0.02*scale, 1e-9)
			if math.Abs(mean-c.mean) > tol {
				t.Errorf("sample mean %g, want %g ± %g", mean, c.mean, tol)
			}
			varTol := math.Max(0.04*c.variance, 1e-9)
			if math.Abs(variance-c.variance) > varTol {
				t.Errorf("sample variance %g, want %g ± %g", variance, c.variance, varTol)
			}
		})
	}
}

// Sampling must respect the declared support and, for continuous families,
// the empirical CDF must match the analytic CDF (a one-sample KS check).
func TestSampleMatchesCDF(t *testing.T) {
	const n = 100_000
	for i, c := range scalarCases {
		if _, isConst := c.d.(Constant); isConst {
			continue
		}
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(200 + i)))
			lo, hi := c.d.Support()
			xs := Sample(c.d, n, rng)
			for _, x := range xs {
				if x < lo || x > hi {
					t.Fatalf("sample %g outside support (%g, %g)", x, lo, hi)
				}
			}
			// KS statistic against the analytic CDF on a grid of sampled
			// points; D_n ~ 1.63/√n at the 1% level, use 2/√n for slack.
			var ks float64
			sorted := append([]float64(nil), xs...)
			sort.Float64s(sorted)
			for j, x := range sorted {
				emp := float64(j+1) / float64(n)
				d := math.Abs(emp - c.d.CDF(x))
				if d > ks {
					ks = d
				}
			}
			if limit := 2 / math.Sqrt(float64(n)); ks > limit {
				t.Errorf("KS = %g exceeds %g", ks, limit)
			}
		})
	}
}

// PDF must integrate to ≈1 over the bulk of the support (trapezoid rule)
// and be non-negative everywhere probed.
func TestPDFIntegratesToOne(t *testing.T) {
	cases := []struct {
		name   string
		d      Dist
		lo, hi float64
	}{
		{"normal", Normal{Mu: 0, Sigma: 1}, -9, 9},
		{"uniform", Uniform{A: -2, B: 6}, -3, 7},
		{"exponential", Exponential{Rate: 2}, 0, 12},
		{"gamma", Gamma{K: 2.2, Theta: 0.09, Loc: 0.01}, 0.01, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			const steps = 200_000
			h := (c.hi - c.lo) / steps
			var sum float64
			for i := 0; i <= steps; i++ {
				x := c.lo + float64(i)*h
				p := c.d.PDF(x)
				if p < 0 {
					t.Fatalf("PDF(%g) = %g < 0", x, p)
				}
				w := 1.0
				if i == 0 || i == steps {
					w = 0.5
				}
				sum += w * p
			}
			if got := sum * h; math.Abs(got-1) > 1e-3 {
				t.Errorf("∫PDF = %g, want 1", got)
			}
		})
	}
}

func TestConstantPDFIsPointMass(t *testing.T) {
	c := Constant{V: 3}
	if !math.IsInf(c.PDF(3), 1) {
		t.Error("PDF at the atom should be +Inf")
	}
	if c.PDF(2.5) != 0 || c.PDF(3.5) != 0 {
		t.Error("PDF off the atom should be 0")
	}
	rng := rand.New(rand.NewSource(1))
	if c.Sample(rng) != 3 {
		t.Error("Sample should return the atom")
	}
}

func TestDegenerateFallbacks(t *testing.T) {
	// σ = 0 Gaussian and B ≤ A uniform behave as point masses rather than
	// dividing by zero.
	n := Normal{Mu: 2, Sigma: 0}
	if n.CDF(1.9) != 0 || n.CDF(2) != 1 || !math.IsInf(n.PDF(2), 1) {
		t.Error("σ=0 normal should be a step at μ")
	}
	if lo, hi := n.Support(); lo != 2 || hi != 2 {
		t.Error("σ=0 normal support should collapse")
	}
	u := Uniform{A: 4, B: 4}
	if u.CDF(3.9) != 0 || u.CDF(4) != 1 || !math.IsInf(u.PDF(4), 1) {
		t.Error("degenerate uniform should be a step at A")
	}
	// Every method must agree on the point-mass reading, including Sample,
	// and also for inverted/negative parameters.
	rng := rand.New(rand.NewSource(1))
	for name, d := range map[string]Dist{
		"σ=0 normal":       n,
		"σ<0 normal":       Normal{Mu: 2, Sigma: -1},
		"B=A uniform":      u,
		"inverted uniform": Uniform{A: 4, B: 3},
		"k=0 gamma":        Gamma{K: 0, Theta: 1, Loc: 5},
		"k<0 gamma":        Gamma{K: -0.5, Theta: 1, Loc: 5},
		"θ=0 gamma":        Gamma{K: 2, Theta: 0, Loc: 5},
		"λ=0 exponential":  Exponential{Rate: 0},
		"λ<0 exponential":  Exponential{Rate: -2},
	} {
		lo, hi := d.Support()
		if lo != hi {
			t.Errorf("%s: support (%g, %g) not collapsed", name, lo, hi)
		}
		if d.Variance() != 0 {
			t.Errorf("%s: variance %g ≠ 0", name, d.Variance())
		}
		for i := 0; i < 8; i++ {
			if got := d.Sample(rng); got != lo {
				t.Fatalf("%s: sample %g off the atom %g", name, got, lo)
			}
		}
		if d.Mean() != lo {
			t.Errorf("%s: mean %g ≠ atom %g", name, d.Mean(), lo)
		}
		if d.CDF(lo-1e-6) != 0 || d.CDF(lo) != 1 {
			t.Errorf("%s: CDF not a unit step at %g", name, lo)
		}
	}
}

// Φ(Φ⁻¹(p)) must round-trip to p within 1e−9 across the open unit interval,
// including deep tails — the accuracy the confidence-band solver relies on.
func TestStdNormalQuantileRoundTrip(t *testing.T) {
	std := Normal{Mu: 0, Sigma: 1}
	ps := []float64{1e-12, 1e-9, 1e-6, 1e-4, 0.01, 0.025, 0.1, 0.25, 0.5,
		0.75, 0.9, 0.975, 0.99, 1 - 1e-4, 1 - 1e-6, 1 - 1e-9}
	for p := 0.001; p < 1; p += 0.001 {
		ps = append(ps, p)
	}
	for _, p := range ps {
		z := StdNormalQuantile(p)
		if back := std.CDF(z); math.Abs(back-p) > 1e-9 {
			t.Errorf("Φ(Φ⁻¹(%g)) = %g, |Δ| = %g", p, back, math.Abs(back-p))
		}
	}
	// Known checkpoints.
	if z := StdNormalQuantile(0.975); math.Abs(z-1.959963984540054) > 1e-9 {
		t.Errorf("Φ⁻¹(0.975) = %.15g", z)
	}
	if z := StdNormalQuantile(0.5); z != 0 {
		t.Errorf("Φ⁻¹(0.5) = %g", z)
	}
}

func TestStdNormalQuantileEdgeCases(t *testing.T) {
	if !math.IsInf(StdNormalQuantile(0), -1) || !math.IsInf(StdNormalQuantile(1), 1) {
		t.Error("endpoints should be ±Inf")
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(StdNormalQuantile(p)) {
			t.Errorf("Φ⁻¹(%g) should be NaN", p)
		}
	}
	// Antisymmetry: Φ⁻¹(p) = −Φ⁻¹(1−p).
	for _, p := range []float64{0.01, 0.2, 0.4} {
		if d := StdNormalQuantile(p) + StdNormalQuantile(1-p); math.Abs(d) > 1e-12 {
			t.Errorf("asymmetric at p=%g: %g", p, d)
		}
	}
}

// Seeded sampling must be bit-for-bit deterministic for every family and
// for joint vectors — the whole repo's tests and benchmarks replay seeds.
func TestSeededSamplingDeterministic(t *testing.T) {
	for _, c := range scalarCases {
		t.Run(c.name, func(t *testing.T) {
			a := Sample(c.d, 64, rand.New(rand.NewSource(7)))
			b := Sample(c.d, 64, rand.New(rand.NewSource(7)))
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("sample %d differs: %g vs %g", i, a[i], b[i])
				}
			}
			other := Sample(c.d, 64, rand.New(rand.NewSource(8)))
			if _, isConst := c.d.(Constant); !isConst {
				same := true
				for i := range a {
					if a[i] != other[i] {
						same = false
						break
					}
				}
				if same {
					t.Fatal("different seeds produced identical streams")
				}
			}
		})
	}
}

func TestIndependentVector(t *testing.T) {
	v := NewIndependent(
		Normal{Mu: 1, Sigma: 0.5},
		Uniform{A: 0, B: 2},
		Constant{V: 7},
	)
	if v.Dim() != 3 {
		t.Fatalf("Dim = %d", v.Dim())
	}
	m := v.MeanVec()
	want := []float64{1, 1, 7}
	for i := range want {
		if math.Abs(m[i]-want[i]) > 1e-12 {
			t.Fatalf("MeanVec = %v, want %v", m, want)
		}
	}
	if c, ok := v.Component(1).(Uniform); !ok || c.B != 2 {
		t.Fatalf("Component(1) = %#v", v.Component(1))
	}

	rng := rand.New(rand.NewSource(3))
	buf := make([]float64, 3)
	got := v.SampleVec(rng, buf)
	if &got[0] != &buf[0] {
		t.Error("SampleVec should reuse a right-sized buffer")
	}
	if got[2] != 7 {
		t.Errorf("constant component sampled as %g", got[2])
	}
	if alloc := v.SampleVec(rng, nil); len(alloc) != 3 {
		t.Errorf("nil buf should allocate dim-length slice, got %d", len(alloc))
	}
	if short := v.SampleVec(rng, make([]float64, 1)); len(short) != 3 {
		t.Errorf("short buf should be replaced, got len %d", len(short))
	}
}

func TestIndependentCopiesComponents(t *testing.T) {
	comps := []Dist{Normal{Mu: 0, Sigma: 1}}
	v := NewIndependent(comps...)
	comps[0] = Constant{V: 99}
	if _, ok := v.Component(0).(Normal); !ok {
		t.Fatal("NewIndependent must copy the component slice")
	}
}

func TestIsoGaussianVec(t *testing.T) {
	v, err := IsoGaussianVec([]float64{1, 2, 3}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if v.Dim() != 3 {
		t.Fatalf("Dim = %d", v.Dim())
	}
	for i, mu := range []float64{1, 2, 3} {
		n, ok := v.Component(i).(Normal)
		if !ok || n.Mu != mu || n.Sigma != 0.5 {
			t.Fatalf("component %d = %#v", i, v.Component(i))
		}
	}
	if _, err := IsoGaussianVec([]float64{1}, 0); err == nil {
		t.Error("σ = 0 should be rejected")
	}
	if _, err := IsoGaussianVec([]float64{1}, -1); err == nil {
		t.Error("σ < 0 should be rejected")
	}
	if _, err := IsoGaussianVec(nil, 1); err == nil {
		t.Error("empty mean vector should be rejected")
	}
}

// The joint empirical mean of an isotropic Gaussian vector must converge to
// μ component-wise.
func TestIsoGaussianVecSampling(t *testing.T) {
	mu := []float64{-3, 0, 4}
	v, err := IsoGaussianVec(mu, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const n = 100_000
	sums := make([]float64, len(mu))
	buf := make([]float64, len(mu))
	for i := 0; i < n; i++ {
		buf = v.SampleVec(rng, buf)
		for j, x := range buf {
			sums[j] += x
		}
	}
	for j := range mu {
		if got := sums[j] / n; math.Abs(got-mu[j]) > 0.01 {
			t.Errorf("component %d mean %g, want %g", j, got, mu[j])
		}
	}
}

func TestSampleHelper(t *testing.T) {
	xs := Sample(Uniform{A: 0, B: 1}, 10, rand.New(rand.NewSource(5)))
	if len(xs) != 10 {
		t.Fatalf("len = %d", len(xs))
	}
	if empty := Sample(Constant{V: 1}, 0, rand.New(rand.NewSource(5))); len(empty) != 0 {
		t.Fatalf("n=0 should give empty slice, got %d", len(empty))
	}
}

// Gamma CDF cross-checks against independently known values: Gamma(1, θ) is
// Exponential(1/θ), and the incomplete-gamma split point (x vs a+1) must not
// introduce a seam.
func TestGammaCDFCrossChecks(t *testing.T) {
	g := Gamma{K: 1, Theta: 2}
	e := Exponential{Rate: 0.5}
	for x := 0.1; x < 10; x += 0.7 {
		if d := math.Abs(g.CDF(x) - e.CDF(x)); d > 1e-12 {
			t.Fatalf("Gamma(1,2) vs Exp(1/2) at %g: Δ=%g", x, d)
		}
	}
	// Continuity across the series/continued-fraction boundary x = a+1.
	g2 := Gamma{K: 3, Theta: 1}
	below, above := g2.CDF(3.999999), g2.CDF(4.000001)
	if above < below || above-below > 1e-5 {
		t.Fatalf("seam at split point: %g vs %g", below, above)
	}
	// Monotone and bounded.
	prev := -1.0
	for x := -1.0; x < 20; x += 0.25 {
		c := g2.CDF(x)
		if c < prev || c < 0 || c > 1 {
			t.Fatalf("CDF not monotone in [0,1] at %g: %g after %g", x, c, prev)
		}
		prev = c
	}
}

func BenchmarkNormalSample(b *testing.B) {
	d := Normal{Mu: 0, Sigma: 1}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		d.Sample(rng)
	}
}

func BenchmarkGammaSample(b *testing.B) {
	d := Gamma{K: 2.2, Theta: 0.09, Loc: 0.01}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		d.Sample(rng)
	}
}

func BenchmarkSampleVec(b *testing.B) {
	v, _ := IsoGaussianVec([]float64{1, 2, 3, 4}, 0.5)
	rng := rand.New(rand.NewSource(1))
	buf := make([]float64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = v.SampleVec(rng, buf)
	}
}

func BenchmarkStdNormalQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		StdNormalQuantile(0.975)
	}
}
