package dist

import (
	"math"
	"math/rand"
)

// Uniform is the continuous uniform distribution on [A, B]. A zero B with
// B ≤ A is not special-cased: a degenerate interval behaves as a point mass
// at A.
type Uniform struct {
	A, B float64
}

// Sample draws uniformly from [A, B).
func (u Uniform) Sample(rng *rand.Rand) float64 {
	if u.B <= u.A {
		return u.A
	}
	return u.A + rng.Float64()*(u.B-u.A)
}

// PDF returns 1/(B−A) inside the interval and 0 outside.
func (u Uniform) PDF(x float64) float64 {
	if u.B <= u.A {
		return Constant{V: u.A}.PDF(x)
	}
	if x < u.A || x > u.B {
		return 0
	}
	return 1 / (u.B - u.A)
}

// CDF returns the clamped linear ramp.
func (u Uniform) CDF(x float64) float64 {
	if u.B <= u.A {
		return Constant{V: u.A}.CDF(x)
	}
	switch {
	case x <= u.A:
		return 0
	case x >= u.B:
		return 1
	}
	return (x - u.A) / (u.B - u.A)
}

// Mean returns (A+B)/2.
func (u Uniform) Mean() float64 {
	if u.B <= u.A {
		return u.A
	}
	return (u.A + u.B) / 2
}

// Variance returns (B−A)²/12.
func (u Uniform) Variance() float64 {
	if u.B <= u.A {
		return 0
	}
	w := u.B - u.A
	return w * w / 12
}

// Support returns (A, B).
func (u Uniform) Support() (lo, hi float64) {
	if u.B <= u.A {
		return u.A, u.A
	}
	return u.A, u.B
}

// Exponential is the exponential distribution with rate Rate (mean 1/Rate).
// A non-positive rate degenerates to a point mass at 0, matching the other
// families' handling of invalid parameters.
type Exponential struct {
	Rate float64 // λ > 0
}

// Sample draws via the stdlib exponential variate scaled to the rate.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	if e.Rate <= 0 {
		return 0
	}
	return rng.ExpFloat64() / e.Rate
}

// PDF returns λ·e^(−λx) for x ≥ 0.
func (e Exponential) PDF(x float64) float64 {
	if e.Rate <= 0 {
		return Constant{V: 0}.PDF(x)
	}
	if x < 0 {
		return 0
	}
	return e.Rate * math.Exp(-e.Rate*x)
}

// CDF returns 1 − e^(−λx), computed with expm1 for small-x accuracy.
func (e Exponential) CDF(x float64) float64 {
	if e.Rate <= 0 {
		return Constant{V: 0}.CDF(x)
	}
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Rate * x)
}

// Mean returns 1/λ.
func (e Exponential) Mean() float64 {
	if e.Rate <= 0 {
		return 0
	}
	return 1 / e.Rate
}

// Variance returns 1/λ².
func (e Exponential) Variance() float64 {
	if e.Rate <= 0 {
		return 0
	}
	return 1 / (e.Rate * e.Rate)
}

// Support returns (0, +Inf).
func (e Exponential) Support() (lo, hi float64) {
	if e.Rate <= 0 {
		return 0, 0
	}
	return 0, math.Inf(1)
}

// Constant is a point mass at V: the representation of a *certain* numeric
// attribute inside an otherwise uncertain tuple (the relational layer wraps
// plain floats in it when assembling UDF input vectors).
type Constant struct {
	V float64
}

// Sample returns V.
func (c Constant) Sample(*rand.Rand) float64 { return c.V }

// PDF is +Inf at the atom and 0 elsewhere (a Dirac mass has no density).
func (c Constant) PDF(x float64) float64 {
	if x == c.V {
		return math.Inf(1)
	}
	return 0
}

// CDF is the unit step at V.
func (c Constant) CDF(x float64) float64 {
	if x < c.V {
		return 0
	}
	return 1
}

// Mean returns V.
func (c Constant) Mean() float64 { return c.V }

// Variance returns 0.
func (c Constant) Variance() float64 { return 0 }

// Support returns (V, V).
func (c Constant) Support() (lo, hi float64) { return c.V, c.V }
