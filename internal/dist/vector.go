package dist

import (
	"fmt"
	"math/rand"
)

// Vector is the joint distribution of a whole uncertain input tuple: the
// random vector X the engines sample from. SampleVec reuses buf when it has
// the right length so the Monte-Carlo hot loop allocates nothing per draw.
type Vector interface {
	// Dim returns the number of components.
	Dim() int
	// SampleVec draws one joint sample into buf (allocated when nil or the
	// wrong length) and returns it.
	SampleVec(rng *rand.Rand, buf []float64) []float64
	// MeanVec returns the component-wise mean E[X] as a fresh slice.
	MeanVec() []float64
}

// Independent is the product distribution of independent scalar components —
// the paper's uncertain-tuple model, where each attribute carries its own
// measurement error.
type Independent struct {
	comps []Dist
}

// NewIndependent builds the product of the given components. The slice is
// copied; the component values themselves are immutable by convention.
func NewIndependent(components ...Dist) *Independent {
	return &Independent{comps: append([]Dist(nil), components...)}
}

// Dim returns the number of components.
func (v *Independent) Dim() int { return len(v.comps) }

// Component returns the i-th scalar marginal.
func (v *Independent) Component(i int) Dist { return v.comps[i] }

// SampleVec draws each component independently.
func (v *Independent) SampleVec(rng *rand.Rand, buf []float64) []float64 {
	if len(buf) != len(v.comps) {
		buf = make([]float64, len(v.comps))
	}
	for i, c := range v.comps {
		buf[i] = c.Sample(rng)
	}
	return buf
}

// MeanVec returns the component means.
func (v *Independent) MeanVec() []float64 {
	out := make([]float64, len(v.comps))
	for i, c := range v.comps {
		out[i] = c.Mean()
	}
	return out
}

// IsoGaussianVec returns the isotropic Gaussian input N(mu, σ²I), the
// paper's default uncertain-tuple model (§6.1: "σ_I = 0.5"). It fails only
// for σ ≤ 0 or an empty mean vector.
func IsoGaussianVec(mu []float64, sigma float64) (*Independent, error) {
	if sigma <= 0 {
		return nil, fmt.Errorf("dist: IsoGaussianVec needs σ > 0, got %g", sigma)
	}
	if len(mu) == 0 {
		return nil, fmt.Errorf("dist: IsoGaussianVec needs a non-empty mean vector")
	}
	comps := make([]Dist, len(mu))
	for i, m := range mu {
		comps[i] = Normal{Mu: m, Sigma: sigma}
	}
	return &Independent{comps: comps}, nil
}
