package dist

import (
	"math"
	"math/rand"
)

// Gamma is the gamma distribution with shape K, scale Theta, and an optional
// location shift Loc (the support starts at Loc). The synthetic SDSS catalog
// uses it for the redshift marginal: Gamma(shape, scale) + floor. Like the
// other families, non-positive shape or scale degenerates to a point mass
// at Loc rather than producing garbage.
type Gamma struct {
	K     float64 // shape k > 0
	Theta float64 // scale θ > 0
	Loc   float64 // support offset
}

// degenerate reports whether the parameters collapse to a point mass.
func (g Gamma) degenerate() bool { return g.K <= 0 || g.Theta <= 0 }

// Sample draws via the Marsaglia–Tsang (2000) squeeze method, which is
// exact, loop-bounded in expectation (< 1.06 iterations for k ≥ 1), and
// needs only normal and uniform variates. Shapes below 1 are boosted with
// the standard U^(1/k) power trick.
func (g Gamma) Sample(rng *rand.Rand) float64 {
	if g.degenerate() {
		return g.Loc
	}
	k := g.K
	boost := 1.0
	if k < 1 {
		// Gamma(k) = Gamma(k+1) · U^(1/k).
		boost = math.Pow(rng.Float64(), 1/k)
		k++
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return g.Loc + g.Theta*boost*d*v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return g.Loc + g.Theta*boost*d*v
		}
	}
}

// PDF returns the gamma density at x.
func (g Gamma) PDF(x float64) float64 {
	if g.degenerate() {
		return Constant{V: g.Loc}.PDF(x)
	}
	z := (x - g.Loc) / g.Theta
	if z <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(g.K)
	return math.Exp((g.K-1)*math.Log(z)-z-lg) / g.Theta
}

// CDF returns the regularized lower incomplete gamma P(K, (x−Loc)/Theta).
func (g Gamma) CDF(x float64) float64 {
	if g.degenerate() {
		return Constant{V: g.Loc}.CDF(x)
	}
	z := (x - g.Loc) / g.Theta
	if z <= 0 {
		return 0
	}
	return regIncGammaP(g.K, z)
}

// Mean returns K·Theta + Loc.
func (g Gamma) Mean() float64 {
	if g.degenerate() {
		return g.Loc
	}
	return g.K*g.Theta + g.Loc
}

// Variance returns K·Theta².
func (g Gamma) Variance() float64 {
	if g.degenerate() {
		return 0
	}
	return g.K * g.Theta * g.Theta
}

// Support returns (Loc, +Inf).
func (g Gamma) Support() (lo, hi float64) {
	if g.degenerate() {
		return g.Loc, g.Loc
	}
	return g.Loc, math.Inf(1)
}

// regIncGammaP computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) with the classic split: the series expansion
// converges fast for x < a+1, the Lentz continued fraction for the
// complementary Q(a, x) elsewhere (Numerical Recipes §6.2).
func regIncGammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return incGammaSeries(a, x)
	}
	return 1 - incGammaCF(a, x)
}

// incGammaSeries evaluates P(a, x) by its power series.
func incGammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-16 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// incGammaCF evaluates Q(a, x) = 1 − P(a, x) by modified Lentz continued
// fraction.
func incGammaCF(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	return h * math.Exp(-x+a*math.Log(x)-lg)
}
