# Local targets mirror .github/workflows/ci.yml step for step so a green
# `make ci` means a green CI run.

GO ?= go

# Perf-trajectory knobs: where the fresh bench run lands, which committed
# entry it is gated against, and how much ns/op drift the gate allows.
BENCH_OUT ?= BENCH_PR10.json
BENCH_BASELINE ?= BENCH_PR7.json
BENCH_MAX_REGRESS ?= 0.35

# Coverage gate: these packages carry the statistical-guarantee machinery
# (including the budgeted sparse-GP inference paths), the network serving
# layer, the fleet router/replicator, and the public client, and must stay
# above the floor.
COVER_PKGS = ./internal/mat ./internal/ecdf ./internal/gp ./internal/core ./internal/server ./internal/server/wire ./internal/fleet ./client
COVER_MIN ?= 70

.PHONY: build test vet fmt fmt-fix race bench bench-json bench-diff cover fuzz-smoke e2e e2e-fleet e2e-rebalance e2e-query-fleet docs lint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails listing any unformatted file (the CI check); fmt-fix rewrites.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "unformatted files:"; echo "$$out"; exit 1; \
	fi

fmt-fix:
	gofmt -w .

# The statistical suites in internal/bench take ~35 min under the race
# detector, so the race pass runs them in -short mode; the full suites run
# race-free in `test`.
race:
	$(GO) test -race -short ./...

# Compile- and run-check every benchmark once without timing it.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# bench-json runs the focused perf-trajectory harness (steady-state
# inference, GP.Add growth, full EvalSamples, filtering, GradHess, parallel
# executor throughput) and writes $(BENCH_OUT) with ns/op, B/op, allocs/op,
# tuples/sec. CI uploads the file as a workflow artifact; compare against
# the committed trajectory entries.
bench-json:
	$(GO) run ./cmd/bench -out $(BENCH_OUT)

# bench-diff is the regression gate: a fresh bench-json run is compared
# against the committed baseline and the build fails on >$(BENCH_MAX_REGRESS)
# ns/op drift or any allocs/op increase on the serial hot-path benchmarks
# (parallel_* throughput is reported but exempt — it depends on host cores).
bench-diff: bench-json
	$(GO) run ./cmd/benchdiff -baseline $(BENCH_BASELINE) -current $(BENCH_OUT) -max-regress $(BENCH_MAX_REGRESS)

# cover enforces a statement-coverage floor on the packages that carry the
# (ε, δ) guarantee machinery. -short keeps it fast; the heavy statistical
# suites run in full in `test`.
cover:
	@fail=0; \
	for p in $(COVER_PKGS); do \
		$(GO) test -short -coverprofile=.cover.out $$p >/dev/null || exit 1; \
		pct=$$($(GO) tool cover -func=.cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
		echo "coverage $$p: $$pct% (floor $(COVER_MIN)%)"; \
		awk -v p=$$pct -v m=$(COVER_MIN) 'BEGIN{exit !(p+0 >= m+0)}' || { echo "coverage $$p below $(COVER_MIN)%"; fail=1; }; \
	done; \
	rm -f .cover.out; \
	exit $$fail

# fuzz-smoke runs each native fuzz target briefly: long enough to execute the
# committed seed corpus plus tens of thousands of mutated inputs against the
# envelope/bound invariants, short enough for every CI run.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDiscrepancyBound -fuzztime=10s ./internal/ecdf
	$(GO) test -run='^$$' -fuzz=FuzzEnvelopeOf -fuzztime=10s ./internal/core

# e2e builds the olgaprod binary, boots it on a loopback port, and drives
# the scripted client session: register → learn-stream 50 tuples → frozen
# replay → snapshot → SIGTERM drain → restart → replay the same seeds —
# failing on any byte of divergence or any served Bound > ε.
e2e:
	$(GO) test -count=1 -v -run 'TestE2ESnapshotRestartReplay|TestE2ESparseSnapshotRestartReplay' ./e2e

# e2e-fleet is the sharded-fleet gate: olgarouter over two olgaprod shards,
# one sparse UDF owned by each, learned through the router and replicated as
# versioned snapshot deltas — then kill -9 one shard mid-frozen-stream and
# require the stream to complete byte-identically from the surviving
# replica, reads to keep serving during the outage, and the shard restarted
# from its snapshots to replay the same bytes with every Bound ≤ ε.
e2e-fleet:
	$(GO) test -count=1 -v -run TestE2EFleetFailover ./e2e

# e2e-rebalance is the dynamic-membership gate: olgarouter over three
# olgaprod shards with ten learned UDFs, then — with a frozen stream in
# flight — a fourth shard joins via POST /v1/fleet/members and an original
# shard leaves. Frozen replays must stay byte-identical throughout, the
# joiner must fetch exactly the UDFs the new ring places on it, and the
# departed shard must drain cleanly once its ownership has moved.
e2e-rebalance:
	$(GO) test -count=1 -v -run TestE2ERebalance ./e2e

# e2e-query-fleet is the distributed-query gate: a three-shard fleet where
# three UDF instances are each owned by a different shard must answer a
# group-by + top-k query spanning all three with bytes identical to a
# single-shard fleet holding every instance, a single-instance plan must
# answer identically forwarded or scattered, and a kill -9 of an owning
# shard mid-scatter must leave every retried answer byte-identical.
e2e-query-fleet:
	$(GO) test -count=1 -v -run TestE2EQueryFleet ./e2e

# docs checks the markdown link graph (relative paths + heading anchors)
# of the README and the docs/ tree; docs/api.md is additionally pinned to
# the code by TestAPIDocConformance in internal/server/wire.
docs:
	$(GO) run ./cmd/linkcheck README.md PAPER.md ROADMAP.md docs

# lint runs staticcheck + govulncheck when installed and skips (with a
# notice) when not, so `make ci` works on boxes without the tools; the CI
# lint job installs both and is blocking.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else echo "lint: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else echo "lint: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; fi

ci: build vet fmt docs lint test race cover fuzz-smoke e2e e2e-fleet e2e-rebalance e2e-query-fleet bench bench-diff
