# Local targets mirror .github/workflows/ci.yml step for step so a green
# `make ci` means a green CI run.

GO ?= go

.PHONY: build test vet fmt fmt-fix race bench bench-json ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails listing any unformatted file (the CI check); fmt-fix rewrites.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "unformatted files:"; echo "$$out"; exit 1; \
	fi

fmt-fix:
	gofmt -w .

# The statistical suites in internal/bench take ~35 min under the race
# detector, so the race pass runs them in -short mode; the full suites run
# race-free in `test`.
race:
	$(GO) test -race -short ./...

# Compile- and run-check every benchmark once without timing it.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# bench-json runs the focused perf-trajectory harness (steady-state
# inference, GP.Add growth, full EvalSamples, filtering, GradHess) and
# writes BENCH_PR2.json with ns/op, B/op, allocs/op. CI uploads the file as
# a workflow artifact; compare against the committed trajectory entry.
bench-json:
	$(GO) run ./cmd/bench -out BENCH_PR2.json

ci: build vet fmt test race bench bench-json
