// Package olgapro is a Go implementation of "Supporting User-Defined
// Functions on Uncertain Data" (Tran, Diao, Sutton, Liu — PVLDB 6(6), 2013).
//
// Given a black-box scalar UDF f and an uncertain input tuple modeled as a
// random vector X, the library characterizes the distribution of Y = f(X)
// with a user-specified (ε, δ) accuracy guarantee in the discrepancy or
// Kolmogorov–Smirnov metric. Two engines are provided:
//
//   - Monte Carlo (EvaluateMC): sample X, evaluate f on every sample, return
//     the empirical CDF — simple, but each input costs
//     m = ln(2/δ)/(2ε²) UDF calls.
//   - OLGAPRO (NewEvaluator): model f online with a Gaussian process and
//     sample the emulator instead, with simultaneous confidence bands
//     bounding the combined modeling + sampling error. After convergence an
//     input costs (almost) no UDF calls, which wins by orders of magnitude
//     for expensive UDFs.
//
// NewHybrid measures the UDF's cost on the fly and routes inputs to
// whichever engine is cheaper.
//
// Quick start:
//
//	f := olgapro.Func(1, func(x []float64) float64 { return slowPhysics(x[0]) })
//	ev, err := olgapro.NewEvaluator(f, olgapro.Config{Eps: 0.1, Delta: 0.05})
//	...
//	out, err := ev.Eval(olgapro.NormalInput([]float64{5.0}, 0.5), rng)
//	fmt.Println(out.Dist.Quantile(0.5), out.Bound)
//
// The subpackages under internal implement every substrate from scratch
// (dense linear algebra, GP regression, empirical-CDF metrics, an R-tree,
// confidence bands, the astrophysics case-study UDFs); this package is the
// stable public surface.
package olgapro

import (
	"io"
	"math/rand"

	"olgapro/client"
	"olgapro/internal/astro"
	"olgapro/internal/core"
	"olgapro/internal/dist"
	"olgapro/internal/ecdf"
	"olgapro/internal/exec"
	"olgapro/internal/kernel"
	"olgapro/internal/mc"
	"olgapro/internal/query"
	"olgapro/internal/sdss"
	"olgapro/internal/server"
	"olgapro/internal/udf"
)

// Core engine types.
type (
	// UDF is a black-box scalar user-defined function on ℝᵈ.
	UDF = udf.Func
	// Evaluator is the OLGAPRO online GP engine (paper Algorithm 5).
	Evaluator = core.Evaluator
	// Config parameterizes an Evaluator; the zero value uses the paper's
	// defaults (ε = 0.1, δ = 0.05, ε_MC = 0.7ε, λ = 1 %, Γ = 5 %, Δθ = 0.05).
	Config = core.Config
	// Output is the per-input result: the distribution, its error bound,
	// filtering state, and cost counters.
	Output = core.Output
	// Stats aggregates evaluator activity.
	Stats = core.Stats
	// Hybrid measures UDF cost online and picks the cheaper engine (§5.4).
	Hybrid = core.Hybrid
	// HybridConfig parameterizes a Hybrid.
	HybridConfig = core.HybridConfig
	// Engine identifies which engine (GP or MC) handled an input.
	Engine = core.Engine
	// TuningPolicy selects where online tuning places training points.
	TuningPolicy = core.TuningPolicy
	// RetrainPolicy selects when hyperparameters are relearned.
	RetrainPolicy = core.RetrainPolicy
)

// Re-exported policy and engine constants.
const (
	EngineUnknown     = core.EngineUnknown
	EngineGP          = core.EngineGP
	EngineMC          = core.EngineMC
	TuneMaxVariance   = core.TuneMaxVariance
	TuneRandom        = core.TuneRandom
	TuneOptimalGreedy = core.TuneOptimalGreedy
	RetrainThreshold  = core.RetrainThreshold
	RetrainEager      = core.RetrainEager
	RetrainNever      = core.RetrainNever
)

// Monte-Carlo engine types (§2.2).
type (
	// MCConfig parameterizes Monte-Carlo evaluation.
	MCConfig = mc.Config
	// MCResult is the Monte-Carlo per-input result.
	MCResult = mc.Result
	// MCMetric selects the metric of the (ε,δ) guarantee.
	MCMetric = mc.Metric
	// Predicate is a selection predicate f(X) ∈ [A,B] with TEP threshold θ.
	Predicate = mc.Predicate
)

// Re-exported metric constants.
const (
	MetricKS          = mc.MetricKS
	MetricDiscrepancy = mc.MetricDiscrepancy
)

// Distribution types for uncertain attributes.
type (
	// Dist is a univariate distribution (uncertain scalar attribute).
	Dist = dist.Dist
	// InputVector is the joint distribution of a UDF's input tuple.
	InputVector = dist.Vector
	// Normal, Uniform, Exponential, Gamma, Constant model attribute noise.
	Normal      = dist.Normal
	Uniform     = dist.Uniform
	Exponential = dist.Exponential
	Gamma       = dist.Gamma
	Constant    = dist.Constant
	// ECDF is an empirical CDF (the engines' output representation).
	ECDF = ecdf.ECDF
	// Envelope carries the mean/lower/upper CDFs behind a GP error bound.
	Envelope = ecdf.Envelope
	// Kernel is a GP covariance function.
	Kernel = kernel.Kernel
	// Cosmology is the ΛCDM model behind the astrophysics UDFs.
	Cosmology = astro.Cosmology
	// Galaxy and Catalog model SDSS-style uncertain objects.
	Galaxy  = sdss.Galaxy
	Catalog = sdss.Catalog
)

// NewEvaluator returns an OLGAPRO evaluator for the UDF.
func NewEvaluator(f UDF, cfg Config) (*Evaluator, error) {
	return core.NewEvaluator(f, cfg)
}

// NewHybrid returns a hybrid MC/GP evaluator for the UDF.
func NewHybrid(f UDF, cfg HybridConfig) (*Hybrid, error) {
	return core.NewHybrid(f, cfg)
}

// EvaluateMC runs the Monte-Carlo baseline (Algorithm 1) on one input.
func EvaluateMC(f UDF, input InputVector, cfg MCConfig, rng *rand.Rand) (MCResult, error) {
	return mc.Evaluate(f, input, cfg, rng)
}

// MCSampleSize returns the Monte-Carlo sample count required for an (ε,δ)
// guarantee under the given metric.
func MCSampleSize(eps, delta float64, metric MCMetric) int {
	return mc.SampleSize(eps, delta, metric)
}

// Func wraps a plain Go function as a d-input UDF.
func Func(d int, f func(x []float64) float64) UDF {
	return udf.FuncOf{D: d, F: f}
}

// NormalInput returns an independent Gaussian input vector N(mu, σ²I), the
// paper's default uncertain-tuple model.
func NormalInput(mu []float64, sigma float64) InputVector {
	v, err := dist.IsoGaussianVec(mu, sigma)
	if err != nil {
		panic(err) // only fails for σ ≤ 0 or an empty mean vector
	}
	return v
}

// Input builds a joint input vector from per-attribute distributions.
func Input(components ...Dist) InputVector {
	return dist.NewIndependent(components...)
}

// SqExpKernel returns the squared-exponential covariance function, the
// paper's default.
func SqExpKernel(sigmaF, lengthscale float64) Kernel {
	return kernel.NewSqExp(sigmaF, lengthscale)
}

// Matern32Kernel returns the Matérn ν=3/2 covariance function.
func Matern32Kernel(sigmaF, lengthscale float64) Kernel {
	return kernel.NewMatern32(sigmaF, lengthscale)
}

// Matern52Kernel returns the Matérn ν=5/2 covariance function.
func Matern52Kernel(sigmaF, lengthscale float64) Kernel {
	return kernel.NewMatern52(sigmaF, lengthscale)
}

// KS returns the Kolmogorov–Smirnov distance between two empirical CDFs.
func KS(a, b *ECDF) float64 { return ecdf.KS(a, b) }

// Discrepancy returns the two-sided discrepancy measure between two
// empirical CDFs (paper Definition 1).
func Discrepancy(a, b *ECDF) float64 { return ecdf.Discrepancy(a, b) }

// DiscrepancyLambda returns the λ-discrepancy restricted to intervals of
// length at least lambda (paper Definition 3).
func DiscrepancyLambda(a, b *ECDF, lambda float64) float64 {
	return ecdf.DiscrepancyLambda(a, b, lambda)
}

// DefaultCosmology returns the concordance ΛCDM model (H0=70, Ωm=0.3,
// ΩΛ=0.7) used by the astrophysics case study.
func DefaultCosmology() Cosmology { return astro.Default() }

// GalAgeUDF returns the 1-D galaxy-age UDF of query Q1.
func GalAgeUDF(c Cosmology) UDF { return astro.GalAgeFunc(c) }

// ComoveVolUDF returns the 2-D comoving-volume UDF of query Q2 with a fixed
// survey area in square degrees.
func ComoveVolUDF(c Cosmology, areaSqDeg float64) UDF {
	return astro.ComoveVolFunc(c, areaSqDeg)
}

// AngDistUDF returns the 2-D angular-distance UDF measuring separation from
// a fixed reference position (degrees).
func AngDistUDF(refRA, refDec float64) UDF { return astro.AngDistFunc(refRA, refDec) }

// GenerateCatalog returns a synthetic SDSS-like galaxy catalog with n
// objects (see internal/sdss for knobs).
func GenerateCatalog(n int, seed int64) *Catalog {
	return sdss.Generate(sdss.GenerateConfig{N: n, Seed: seed})
}

// Relational layer re-exports: tuples with uncertain attributes, the
// operators needed for Q1/Q2-style queries, and the bounded uncertain
// algebra (top-k / windows / group-by with [certain, possible] answers).
type (
	Tuple       = query.Tuple
	Value       = query.Value
	Iterator    = query.Iterator
	ScanOp      = query.Scan
	SelectOp    = query.Select
	ProjectOp   = query.Project
	CrossJoinOp = query.CrossJoin
	ApplyUDFOp  = query.ApplyUDF
	QueryEngine = query.Engine

	// Plan is the fluent query builder: From(...).Where(...).Apply(...).
	// Window(...).TopK(...).Run().
	Plan = query.Plan
	// Bounded is a [certain, possible] interval answer.
	Bounded = query.Bounded
	// Stat selects the statistic (mean or quantile) bounded operators
	// rank and aggregate on.
	Stat = query.Stat
	// Agg is one aggregate column of a window or group-by.
	Agg = query.Agg
	// ApplySpec, RankSpec, WindowSpec, GroupBySpec configure Plan stages.
	ApplySpec   = query.ApplySpec
	RankSpec    = query.RankSpec
	WindowSpec  = query.WindowSpec
	GroupBySpec = query.GroupBySpec
	// TopKOp, WindowOp, GroupByOp are the bounded operators themselves,
	// for callers composing iterators directly.
	TopKOp    = query.TopK
	WindowOp  = query.Window
	GroupByOp = query.GroupBy
)

// NewScan returns a scan over an in-memory relation.
func NewScan(tuples []*Tuple) *ScanOp { return query.NewScan(tuples) }

// Drain pulls all tuples from an iterator.
func Drain(it Iterator) ([]*Tuple, error) { return query.Drain(it) }

// From starts a query plan over an in-memory relation.
func From(tuples []*Tuple) *Plan { return query.From(tuples) }

// FromIterator starts a query plan over an existing operator tree.
func FromIterator(it Iterator) *Plan { return query.FromIterator(it) }

// GalaxyTuple converts catalog attributes into an uncertain tuple.
func GalaxyTuple(objID int64, ra, dec, raErr, decErr, z, zErr float64) *Tuple {
	return query.GalaxyTuple(objID, ra, dec, raErr, decErr, z, zErr)
}

// GPEngine adapts an Evaluator for use in query plans. Output.Engine is
// stamped by the returned wrapper, uniformly across all three engines.
func GPEngine(e *Evaluator) QueryEngine { return query.NewEvaluatorEngine(e) }

// MCQueryEngine adapts Monte-Carlo evaluation of f under cfg for use in
// query plans; the engine is stateless and may be shared across workers.
func MCQueryEngine(f UDF, cfg MCConfig) QueryEngine { return query.NewMCEngine(f, cfg) }

// HybridQueryEngine adapts a Hybrid router for use in query plans.
func HybridQueryEngine(h *Hybrid) QueryEngine { return query.NewHybridEngine(h) }

// MeanStat is the mean statistic for bounded rank/aggregate operators.
func MeanStat() Stat { return query.MeanStat() }

// QuantileStat is the p-quantile statistic for bounded rank/aggregate
// operators.
func QuantileStat(p float64) Stat { return query.QuantileStat(p) }

// CountAgg, SumAgg, AvgAgg, MinAgg, MaxAgg build aggregate columns for
// Window/GroupBy specs (see query.Agg for the Stat/As modifiers).
func CountAgg() Agg          { return query.Count() }
func SumAgg(attr string) Agg { return query.Sum(attr) }
func AvgAgg(attr string) Agg { return query.Avg(attr) }
func MinAgg(attr string) Agg { return query.Min(attr) }
func MaxAgg(attr string) Agg { return query.Max(attr) }

// Parallel execution (internal/exec): run the UDF-application stage of a
// query across a worker pool with deterministic, order-preserving semantics
// — for a fixed ParallelOptions.Seed the output is bit-identical to serial
// execution at any worker count.
type (
	// ParallelEngine is a pool of per-worker engines sharing one trained
	// model; build one with NewParallelEngine or NewParallelPool and fan a
	// stage out with its Apply method.
	ParallelEngine = exec.Pool
	// ParallelOptions tunes one parallel apply stage (context, seed,
	// queue depth, predicate truncation).
	ParallelOptions = exec.Options
	// ParallelEvalOp is the order-preserving parallel UDF-application
	// operator returned by ParallelEngine.Apply.
	ParallelEvalOp = exec.ParallelEval
)

// NewParallelEngine clones a warmed-up evaluator into a pool of frozen
// per-worker copies that share its tuned hyperparameters and training set,
// so the expensive GP fitting is not redone per worker. workers ≤ 0 uses
// GOMAXPROCS. The evaluator needs at least two training points (one warm-up
// Eval suffices).
func NewParallelEngine(ev *Evaluator, workers int) (*ParallelEngine, error) {
	return exec.NewEvaluatorPool(ev, workers)
}

// NewParallelPool builds a parallel engine pool from caller-supplied
// engines, one per worker (e.g. stateless Monte-Carlo engines).
func NewParallelPool(engines ...QueryEngine) (*ParallelEngine, error) {
	return exec.NewPool(engines...)
}

// TupleSeed derives the per-tuple RNG seed used by both the serial planner
// (Plan.Apply) and the parallel executor for the tuple at the given stream
// ordinal, for reference implementations that need to reproduce the
// sampling exactly.
func TupleSeed(base, seq int64) int64 { return query.TupleSeed(base, seq) }

// NewECDF builds an empirical CDF from samples (copied and sorted).
func NewECDF(samples []float64) *ECDF { return ecdf.New(samples) }

// NewCrossJoin returns the cross product of two relations with prefixed
// attribute names; skipSelfPairs keeps only unordered distinct pairs, the
// usual form of a self-join like query Q2.
func NewCrossJoin(left []*Tuple, leftPrefix string, right []*Tuple, rightPrefix string, skipSelfPairs bool) *CrossJoinOp {
	return query.NewCrossJoin(left, leftPrefix, right, rightPrefix, skipSelfPairs)
}

// AngDist4UDF returns the 4-D angular-distance UDF Distance(G1.pos, G2.pos)
// where both positions are uncertain.
func AngDist4UDF() UDF { return astro.AngDistFunc4() }

// Extensions beyond the paper (its §8 future work and production needs).

// Multivariate-output support: one GP per output component with shared UDF
// evaluations.
type (
	// MultiUDF is a black-box vector-valued UDF f: ℝᵈ → ℝᵏ.
	MultiUDF = core.MultiFunc
	// MultiEvaluator runs OLGAPRO per output component.
	MultiEvaluator = core.MultiEvaluator
	// Snapshot is the serializable state of a trained evaluator.
	Snapshot = core.Snapshot
)

// MultiFunc wraps a plain Go function as a d-input, k-output UDF.
func MultiFunc(d, k int, f func(x []float64, out []float64) []float64) MultiUDF {
	return core.MultiFuncOf{D: d, K: k, F: f}
}

// NewMultiEvaluator builds one OLGAPRO evaluator per output component of a
// vector-valued UDF, sharing UDF evaluations across components.
func NewMultiEvaluator(f MultiUDF, cfg Config) (*MultiEvaluator, error) {
	return core.NewMultiEvaluator(f, cfg)
}

// SqExpARDKernel returns the squared-exponential kernel with per-dimension
// lengthscales (automatic relevance determination) for high-dimensional
// inputs.
func SqExpARDKernel(sigmaF float64, lengthscales []float64) Kernel {
	return kernel.NewSqExpARD(sigmaF, lengthscales)
}

// LoadEvaluator restores a saved evaluator for the UDF from r; save with
// (*Evaluator).Save. The snapshot carries the training pairs and learned
// hyperparameters, so the restored evaluator keeps its accumulated knowledge
// without re-paying UDF calls. Snapshots are versioned on disk
// (core.SnapshotVersion); files from older builds load transparently.
func LoadEvaluator(f UDF, cfg Config, r io.Reader) (*Evaluator, error) {
	return core.Load(f, cfg, r)
}

// MixtureDist returns a finite mixture of scalar distributions with the
// given (unnormalized) weights — the model for multimodal uncertain
// attributes. Empty weights means equal weights.
func MixtureDist(weights []float64, components ...Dist) (Dist, error) {
	return dist.NewMixture(weights, components...)
}

// Serving layer (internal/server): the olgaprod network service. A Server
// owns an evaluator registry — one warm, tuning-enabled evaluator per
// registered UDF behind a single-writer loop, with frozen clones fanned out
// for deterministic read traffic — plus snapshot persistence and admission
// control. cmd/olgaprod is the runnable daemon; embedders can mount
// Server.Handler on their own http.Server.
type (
	// Server is the olgaprod HTTP service.
	Server = server.Server
	// ServerConfig parameterizes a Server (snapshot dir, admission bound,
	// request deadline, frozen-clone fan-out).
	ServerConfig = server.Config
	// ServerCatalogEntry describes one built-in UDF clients can register.
	ServerCatalogEntry = server.CatalogEntry
)

// NewServer builds the olgaprod service, restoring any GP snapshots found
// in cfg.SnapshotDir so a restarted server skips re-learning.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// ServerCatalog lists the built-in UDFs the service can register.
func ServerCatalog() []ServerCatalogEntry { return server.Catalog() }

// Client-side access to a running olgaprod shard, olgarouter fleet, or any
// embedder of Server.Handler: the olgapro/client package speaks the
// versioned /v1 wire surface with typed error-envelope decoding, context
// deadlines, and transparent 429 retry. Aliased here so library consumers
// can stay on a single import.
type (
	// Client talks to one olgaprod shard or olgarouter instance.
	Client = client.Client
	// ClientOption configures a Client (token, transport, retries).
	ClientOption = client.Option
	// APIError is a decoded /v1 error envelope plus its HTTP status;
	// dispatch on its stable Code via IsErrorCode.
	APIError = client.APIError
)

// NewClient builds a /v1 API client for the service at baseURL; see
// client.WithToken, client.WithHTTPClient, client.WithRetries for options.
func NewClient(baseURL string, opts ...ClientOption) *Client {
	return client.New(baseURL, opts...)
}

// IsErrorCode reports whether err is an *APIError carrying the given
// stable wire code (e.g. wire codes re-exported as client.CodeNotFound).
func IsErrorCode(err error, code client.ErrorCode) bool {
	return client.IsCode(err, code)
}
