// Quickstart: characterize the output distribution of an expensive
// black-box UDF evaluated on uncertain input, with an (ε,δ) accuracy
// guarantee — and watch the GP engine stop calling the UDF once it has
// learned the function, while Monte Carlo keeps paying full price.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"olgapro"
)

// expensiveUDF stands in for external code (a C program, a numerical
// simulation...). It burns ~1ms of CPU per call so the cost difference
// between the engines is visible in wall-clock time.
func expensiveUDF(x []float64) float64 {
	deadline := time.Now().Add(time.Millisecond)
	acc := 0.0
	for time.Now().Before(deadline) {
		acc += 1e-9 // keep the optimizer honest
	}
	return math.Sin(x[0])*math.Exp(-x[0]/8) + acc*0
}

func main() {
	rng := rand.New(rand.NewSource(42))
	f := olgapro.Func(1, expensiveUDF)

	ev, err := olgapro.NewEvaluator(f, olgapro.Config{
		Eps:    0.1,  // total discrepancy budget ε
		Delta:  0.05, // failure probability δ
		Kernel: olgapro.SqExpKernel(1, 1.5),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("OLGAPRO: evaluating f over a stream of uncertain tuples")
	fmt.Println("tuple   median   90% interval        bound   UDF-calls  time")
	var gpTotal time.Duration
	for i := 0; i < 10; i++ {
		// Each tuple's attribute is uncertain: N(μ, 0.5²) with μ drifting.
		input := olgapro.NormalInput([]float64{1 + 0.8*float64(i)}, 0.5)
		start := time.Now()
		out, err := ev.Eval(input, rng)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		gpTotal += elapsed
		fmt.Printf("%5d  %7.4f  [%7.4f, %7.4f]  %.4f  %9d  %s\n",
			i,
			out.Dist.Quantile(0.5),
			out.Dist.Quantile(0.05), out.Dist.Quantile(0.95),
			out.Bound,
			out.UDFCalls,
			elapsed.Round(time.Millisecond),
		)
	}
	st := ev.Stats()
	fmt.Printf("\nGP engine: %d UDF calls total, %d training points, %v wall time\n",
		st.UDFCalls, st.TrainingPoints, gpTotal.Round(time.Millisecond))

	// The same guarantee via Monte Carlo needs m UDF calls per tuple.
	m := olgapro.MCSampleSize(0.1, 0.05, olgapro.MetricDiscrepancy)
	fmt.Printf("Monte Carlo would need %d UDF calls per tuple (≈%v each at 1ms/call),\n",
		m, (time.Duration(m) * time.Millisecond).Round(time.Millisecond))
	fmt.Printf("i.e. ≈%v for the same 10 tuples.\n",
		(time.Duration(10*m) * time.Millisecond).Round(time.Second))

	// Demonstrate once, so the comparison is grounded:
	start := time.Now()
	res, err := olgapro.EvaluateMC(f, olgapro.NormalInput([]float64{5}, 0.5),
		olgapro.MCConfig{Eps: 0.1, Delta: 0.05, Metric: olgapro.MetricDiscrepancy}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMC check on one tuple: median %.4f, %d UDF calls, %v\n",
		res.Dist.Quantile(0.5), res.UDFCalls, time.Since(start).Round(time.Millisecond))
}
