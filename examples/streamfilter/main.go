// Streamfilter: real-time detection over a stream of uncertain tuples, in
// the spirit of the paper's tornado-detection motivation — a detection UDF
// scores each observation, and a selection predicate with a
// tuple-existence-probability threshold keeps only the tuples whose score is
// plausibly in the alarm range. Online filtering (paper §2.2-B and §5.5)
// drops hopeless tuples after a handful of samples instead of paying the
// full per-tuple evaluation cost.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"olgapro"
)

// detectionScore is a bumpy 2-D feature detector over (reflectivity, shear)
// readings; high scores indicate rotation signatures.
func detectionScore(x []float64) float64 {
	r, s := x[0], x[1]
	return 2.2*math.Exp(-((r-7)*(r-7)+(s-6.5)*(s-6.5))/1.5) +
		0.8*math.Exp(-((r-3)*(r-3)+(s-3)*(s-3))/4)
}

func main() {
	rng := rand.New(rand.NewSource(11))
	f := olgapro.Func(2, detectionScore)

	// Alarm when the score is in [1.2, ∞) with probability ≥ 0.1.
	pred := &olgapro.Predicate{A: 1.2, B: 100, Theta: 0.1}

	const tuples = 120
	inputs := make([]olgapro.InputVector, tuples)
	for i := range inputs {
		// Sensor readings with measurement noise; most are background, a
		// few drift near the detection bump.
		mu := []float64{1 + 8*rng.Float64(), 1 + 8*rng.Float64()}
		inputs[i] = olgapro.NormalInput(mu, 0.4)
	}

	// --- GP engine with online filtering ---
	ev, err := olgapro.NewEvaluator(f, olgapro.Config{
		Eps: 0.1, Delta: 0.05,
		Kernel:    olgapro.SqExpKernel(1, 1.2),
		Predicate: pred,
	})
	if err != nil {
		log.Fatal(err)
	}
	var alarms, dropped, inferredSamples, totalSamples int
	for _, in := range inputs {
		out, err := ev.Eval(in, rng)
		if err != nil {
			log.Fatal(err)
		}
		inferredSamples += out.SamplesInferred
		totalSamples += out.Samples
		if out.Filtered {
			dropped++
			continue
		}
		alarms++
		if alarms <= 5 {
			fmt.Printf("ALARM: Pr[score ≥ %.1f] ∈ [%.3f, %.3f], score median %.3f (bound %.3f)\n",
				pred.A, out.TEPLower, out.TEPUpper, out.Dist.Quantile(0.5), out.Bound)
		}
	}
	st := ev.Stats()
	fmt.Printf("\nGP+OnlineFilter: %d/%d tuples dropped early, %d alarms\n", dropped, tuples, alarms)
	fmt.Printf("  inference ran on %d of %d samples (%.0f%% saved)\n",
		inferredSamples, totalSamples,
		100*(1-float64(inferredSamples)/float64(totalSamples)))
	fmt.Printf("  %d UDF calls for the whole stream\n\n", st.UDFCalls)

	// --- MC baseline with online filtering, for comparison ---
	var mcCalls, mcDropped int
	for _, in := range inputs {
		res, err := olgapro.EvaluateMC(f, in, olgapro.MCConfig{
			Eps: 0.1, Delta: 0.05, Metric: olgapro.MetricDiscrepancy,
			Predicate: pred,
		}, rng)
		if err != nil {
			log.Fatal(err)
		}
		mcCalls += res.UDFCalls
		if res.Filtered {
			mcDropped++
		}
	}
	fmt.Printf("MC+OnlineFilter: %d tuples dropped, %d UDF calls total\n", mcDropped, mcCalls)
	fmt.Printf("UDF-call ratio MC/GP: %.0fx\n", float64(mcCalls)/math.Max(1, float64(st.UDFCalls)))
}
