// Astrophysics: the paper's motivating queries Q1 and Q2 (§1) over a
// synthetic SDSS-like catalog whose position and redshift attributes carry
// measurement uncertainty.
//
//	Q1: SELECT G.objID, GalAge(G.redshift) FROM Galaxy G
//	Q2: SELECT G1.objID, G2.objID, ComoveVol(G1.redshift, G2.redshift, AREA)
//	    FROM Galaxy G1, Galaxy G2
//	    WHERE Distance(G1.pos, G2.pos) ∈ [l, u]
//
// The GalAge and ComoveVol UDFs are real ΛCDM computations (numerical
// quadrature); the uncertainty of each attribute propagates into a full
// output distribution per tuple rather than a single number.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"olgapro"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	cosmo := olgapro.DefaultCosmology()
	cat := olgapro.GenerateCatalog(24, 7)

	rel := make([]*olgapro.Tuple, len(cat.Galaxies))
	for i, g := range cat.Galaxies {
		rel[i] = olgapro.GalaxyTuple(g.ObjID, g.RA, g.Dec, g.RAErr, g.DecErr,
			g.Redshift, g.RedshiftErr)
	}

	// --- Q1: galaxy ages with uncertainty ---
	ageEval, err := olgapro.NewEvaluator(olgapro.GalAgeUDF(cosmo), olgapro.Config{
		Eps: 0.1, Delta: 0.05, Kernel: olgapro.SqExpKernel(4, 0.3),
	})
	if err != nil {
		log.Fatal(err)
	}
	q1 := &olgapro.ApplyUDFOp{
		In:     olgapro.NewScan(rel),
		Inputs: []string{"redshift"},
		Out:    "galAge",
		Engine: olgapro.GPEngine(ageEval),
		Rng:    rng,
	}
	results, err := olgapro.Drain(q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q1: SELECT objID, GalAge(redshift) FROM Galaxy")
	fmt.Println("objID     z(mean)   age median  age 90% interval (Gyr)")
	for _, t := range results[:8] {
		z := t.MustGet("redshift").D.Mean()
		age := t.MustGet("galAge").R
		fmt.Printf("%d  %7.4f  %9.3f   [%.3f, %.3f]\n",
			t.MustGet("objID").I, z,
			age.Quantile(0.5), age.Quantile(0.05), age.Quantile(0.95))
	}
	st := ageEval.Stats()
	fmt.Printf("(GalAge: %d tuples evaluated with %d UDF calls — MC would need %d)\n\n",
		len(results), st.UDFCalls,
		len(results)*olgapro.MCSampleSize(0.1, 0.05, olgapro.MetricDiscrepancy))

	// --- Q2: comoving volume of nearby pairs ---
	pairsRel := rel[:10]
	join := olgapro.NewCrossJoin(pairsRel, "g1.", pairsRel, "g2.", true)
	allPairs, err := olgapro.Drain(join)
	if err != nil {
		log.Fatal(err)
	}

	// WHERE Distance(g1.pos, g2.pos) ∈ [0, 20]° with TEP threshold 0.2:
	// pairs that cannot be within 20° (with probability ≥ 0.2) are dropped.
	distEval, err := olgapro.NewEvaluator(olgapro.AngDist4UDF(), olgapro.Config{
		Eps: 0.1, Delta: 0.05, Kernel: olgapro.SqExpKernel(20, 15),
		Predicate: &olgapro.Predicate{A: 0, B: 20, Theta: 0.2},
	})
	if err != nil {
		log.Fatal(err)
	}
	withDist := &olgapro.ApplyUDFOp{
		In:     olgapro.NewScan(allPairs),
		Inputs: []string{"g1.ra", "g1.dec", "g2.ra", "g2.dec"},
		Out:    "distance",
		Engine: olgapro.GPEngine(distEval),
		Rng:    rng,
	}
	volEval, err := olgapro.NewEvaluator(olgapro.ComoveVolUDF(cosmo, 100), olgapro.Config{
		Eps: 0.1, Delta: 0.05, Kernel: olgapro.SqExpKernel(5e7, 0.3),
	})
	if err != nil {
		log.Fatal(err)
	}
	q2 := &olgapro.ApplyUDFOp{
		In:     withDist,
		Inputs: []string{"g1.redshift", "g2.redshift"},
		Out:    "comoveVol",
		Engine: olgapro.GPEngine(volEval),
		Rng:    rng,
	}
	kept, err := olgapro.Drain(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q2: ... WHERE Distance(g1.pos, g2.pos) ∈ [0, 20]°  (θ = 0.2)")
	fmt.Printf("pairs: %d, dropped by TEP filter: %d, kept: %d\n",
		len(allPairs), withDist.Dropped, len(kept))
	fmt.Println("g1        g2        dist°    comoving volume median (Mpc³)")
	for i, t := range kept {
		if i >= 6 {
			fmt.Printf("... (%d more)\n", len(kept)-6)
			break
		}
		fmt.Printf("%d  %d  %7.3f  %12.4g\n",
			t.MustGet("g1.objID").I, t.MustGet("g2.objID").I,
			t.MustGet("distance").R.Quantile(0.5),
			t.MustGet("comoveVol").R.Quantile(0.5))
	}
}
