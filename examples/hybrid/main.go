// Hybrid: the paper's §5.4 solution for black-box UDFs whose cost is
// unknown upfront. The Hybrid evaluator runs a short calibration phase on
// the GP path while measuring both the UDF's evaluation time and the GP's
// per-input cost, then routes the rest of the stream to whichever engine is
// projected cheaper: MC for fast UDFs (where m cheap calls beat GP algebra)
// and GP for slow ones.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"olgapro"
)

func run(name string, evalTime time.Duration, f olgapro.UDF) {
	rng := rand.New(rand.NewSource(3))
	h, err := olgapro.NewHybrid(f, olgapro.HybridConfig{
		Config: olgapro.Config{
			Eps: 0.1, Delta: 0.05,
			Kernel: olgapro.SqExpKernel(1, 1.5),
		},
		CalibrationInputs: 5,
		EvalTime:          evalTime, // nominal cost per UDF call
	})
	if err != nil {
		log.Fatal(err)
	}
	engines := map[olgapro.Engine]int{}
	for i := 0; i < 20; i++ {
		mu := []float64{1 + 8*rng.Float64(), 1 + 8*rng.Float64()}
		_, eng, err := h.Eval(olgapro.NormalInput(mu, 0.5), rng)
		if err != nil {
			log.Fatal(err)
		}
		engines[eng]++
	}
	choice, decided := h.Choice()
	fmt.Printf("%-28s nominal T=%-8s → chose %s after calibration (GP path: %d, MC path: %d, decided: %v)\n",
		name, evalTime, choice, engines[olgapro.EngineGP], engines[olgapro.EngineMC], decided)
}

func main() {
	smooth := olgapro.Func(2, func(x []float64) float64 {
		return math.Exp(-((x[0]-5)*(x[0]-5) + (x[1]-5)*(x[1]-5)) / 12)
	})
	fmt.Println("Hybrid engine choice by UDF evaluation time (same function):")
	run("cheap UDF (sensor calc)", 2*time.Microsecond, smooth)
	run("moderate UDF (numeric)", time.Millisecond, smooth)
	run("expensive UDF (simulation)", 200*time.Millisecond, smooth)
	fmt.Println()
	fmt.Println("Rule of thumb from the paper (§6.3): MC below ≈0.1ms/call,")
	fmt.Println("GP above ≈1ms for low-dimensional functions.")
}
