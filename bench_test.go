package olgapro

// One benchmark per table and figure of the paper's evaluation (§6). Each
// benchmark regenerates the corresponding artifact through the experiment
// harness at a reduced scale; run `go run ./cmd/experiments` for the
// full-scale tables recorded in EXPERIMENTS.md.

import (
	"testing"

	"olgapro/internal/bench"
)

// benchScale keeps the full `go test -bench=.` sweep tractable; the shapes
// are the same as DefaultScale, only noisier.
func benchScale() bench.Scale {
	return bench.Scale{Seed: 1, Inputs: 4, Truth: 4000}
}

func runFigure(b *testing.B, name string) {
	b.Helper()
	e, err := bench.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	sc := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkFig5a regenerates Fig. 5(a): GP function-fitting accuracy vs. n.
func BenchmarkFig5a(b *testing.B) { runFigure(b, "fig5a") }

// BenchmarkFig5b regenerates Fig. 5(b): error bound vs. actual error vs. λ.
func BenchmarkFig5b(b *testing.B) { runFigure(b, "fig5b") }

// BenchmarkProfile3 regenerates the §6.2 error-allocation profile.
func BenchmarkProfile3(b *testing.B) { runFigure(b, "profile3") }

// BenchmarkFig5cd regenerates Fig. 5(c)+(d): local inference accuracy/time.
func BenchmarkFig5cd(b *testing.B) { runFigure(b, "fig5cd") }

// BenchmarkFig5e regenerates Fig. 5(e): online tuning point placement.
func BenchmarkFig5e(b *testing.B) { runFigure(b, "fig5e") }

// BenchmarkFig5fg regenerates Fig. 5(f)+(g): retraining strategies.
func BenchmarkFig5fg(b *testing.B) { runFigure(b, "fig5fg") }

// BenchmarkFig5h regenerates Fig. 5(h): time vs. accuracy requirement ε.
func BenchmarkFig5h(b *testing.B) { runFigure(b, "fig5h") }

// BenchmarkFig5i regenerates Fig. 5(i): GP vs. MC across UDF eval time T.
func BenchmarkFig5i(b *testing.B) { runFigure(b, "fig5i") }

// BenchmarkFig5jk regenerates Fig. 5(j)+(k): online filtering time/accuracy.
func BenchmarkFig5jk(b *testing.B) { runFigure(b, "fig5jk") }

// BenchmarkFig5l regenerates Fig. 5(l): time vs. function dimensionality.
func BenchmarkFig5l(b *testing.B) { runFigure(b, "fig5l") }

// BenchmarkTable64 regenerates the §6.4 case-study function table.
func BenchmarkTable64(b *testing.B) { runFigure(b, "table64") }

// BenchmarkFig6a regenerates Fig. 6(a): AngDist output PDF.
func BenchmarkFig6a(b *testing.B) { runFigure(b, "fig6a") }

// BenchmarkFig6bcd regenerates Fig. 6(b)+(c)+(d): GP vs. MC on astro UDFs.
func BenchmarkFig6bcd(b *testing.B) { runFigure(b, "fig6bcd") }

// BenchmarkAblation1 measures incremental vs. batch model updates (A1).
func BenchmarkAblation1(b *testing.B) { runFigure(b, "ablation1") }

// BenchmarkAblation2 measures the sub-box γ-bound refinement (A2).
func BenchmarkAblation2(b *testing.B) { runFigure(b, "ablation2") }

// BenchmarkAblation3 measures guarded vs. unguarded filtering (A3).
func BenchmarkAblation3(b *testing.B) { runFigure(b, "ablation3") }

// BenchmarkThroughput measures parallel-executor tuples/sec (PR 3).
func BenchmarkThroughput(b *testing.B) { runFigure(b, "throughput") }
