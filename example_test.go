package olgapro_test

import (
	"fmt"
	"math/rand"

	"olgapro"
)

// Example evaluates a black-box UDF on one uncertain input under an
// (ε, δ) contract: the returned distribution of f(X) is within Bound of
// the truth with probability ≥ 1 − δ. The printed values are coarse on
// purpose — the full distribution is float-exact only for a fixed
// platform and seed.
func Example() {
	f := olgapro.Func(1, func(x []float64) float64 { return x[0] * x[0] })
	ev, err := olgapro.NewEvaluator(f, olgapro.Config{Eps: 0.2, Delta: 0.1})
	if err != nil {
		fmt.Println(err)
		return
	}
	rng := rand.New(rand.NewSource(7))
	out, err := ev.Eval(olgapro.NormalInput([]float64{3}, 0.01), rng)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("median of f(X) = %.0f\n", out.Dist.Quantile(0.5))
	fmt.Println("bound within eps:", out.Bound <= 0.2)
	// Output:
	// median of f(X) = 9
	// bound within eps: true
}
