// Package e2e drives the olgaprod network service end to end as CI does:
// build the real binaries, boot them on loopback ports, run a scripted
// session through the public olgapro/client package — register UDFs, stream
// learning tuples, snapshot, restart or kill processes, replay the same
// seeds — and assert the service serves bit-identical bytes with every
// output honoring the (ε, δ) contract. All HTTP goes through the client:
// the tests double as a conformance suite for the /v1 wire surface.
package e2e

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"olgapro/client"
)

// proc is one running olgaprod or olgarouter process.
type proc struct {
	cmd    *exec.Cmd
	addr   string
	stderr *bytes.Buffer
}

// buildBinary compiles one command into dir, once per test.
func buildBinary(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	build := exec.Command("go", "build", "-o", bin, pkg)
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building %s: %v", pkg, err)
	}
	return bin
}

// startProc boots a server binary and waits for its "listening on" line.
func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd, stderr: &stderr}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})

	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
		io.Copy(io.Discard, stdout)
	}()
	select {
	case line, ok := <-lines:
		if !ok {
			t.Fatalf("%s exited before announcing its address; stderr:\n%s",
				filepath.Base(bin), stderr.String())
		}
		const marker = " listening on "
		i := strings.Index(line, marker)
		if i < 0 {
			t.Fatalf("unexpected boot line %q", line)
		}
		p.addr = line[i+len(marker):]
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not come up within 30s", filepath.Base(bin))
	}
	return p
}

// shutdown sends SIGTERM and verifies a clean (graceful-drain) exit.
func (p *proc) shutdown(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("process exited dirty: %v; stderr:\n%s", err, p.stderr.String())
		}
	case <-time.After(20 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("process did not drain within 20s; stderr:\n%s", p.stderr.String())
	}
}

// kill9 is the unclean death: SIGKILL, no drain, no snapshot on the way out.
func (p *proc) kill9(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
}

func (p *proc) client() *client.Client { return client.New("http://" + p.addr) }

// sessionInputs is the scripted 50-tuple workload, deterministic by
// construction.
func sessionInputs() []client.InputSpec {
	rng := rand.New(rand.NewSource(1234))
	inputs := make([]client.InputSpec, 50)
	for i := range inputs {
		inputs[i] = client.InputSpec{
			{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.12},
			{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.12},
		}
	}
	return inputs
}

// assertContract checks every served line against the (ε, δ) surface
// contract: Bound ≤ ε.
func assertContract(t *testing.T, phase string, results []client.StreamResult, n int) {
	t.Helper()
	if len(results) != n {
		t.Fatalf("%s: got %d lines, want %d", phase, len(results), n)
	}
	for _, r := range results {
		if !(r.Bound > 0) || r.Bound > r.Eps+1e-12 {
			t.Fatalf("%s: seq %d bound %g violates ε=%g (met_budget=%v)",
				phase, r.Seq, r.Bound, r.Eps, r.MetBudget)
		}
	}
}

// assertNoUDFCalls asserts a frozen replay paid nothing.
func assertNoUDFCalls(t *testing.T, phase string, results []client.StreamResult) {
	t.Helper()
	for _, r := range results {
		if r.UDFCalls != 0 {
			t.Fatalf("%s paid %d UDF calls at seq %d", phase, r.UDFCalls, r.Seq)
		}
	}
}

func TestE2ESnapshotRestartReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and boots the real binary; skipped in -short")
	}
	workDir := t.TempDir()
	bin := buildBinary(t, workDir, "olgapro/cmd/olgaprod")
	snapDir := filepath.Join(workDir, "snapshots")
	inputs := sessionInputs()
	ctx := context.Background()

	// --- First server lifetime: register, learn, replay, snapshot. ---
	p1 := startProc(t, bin,
		"-addr", "127.0.0.1:0", "-snapshot-dir", snapDir,
		"-max-inflight", "64", "-workers", "2", "-drain-timeout", "10s")
	c1 := p1.client()

	info, err := c1.Register(ctx, client.RegisterRequest{
		UDF: "poly/smooth2d", Name: "smooth", Eps: 0.2, Delta: 0.1,
		Warmup: inputs[:4], WarmupSeed: 99,
	})
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if info.Name != "smooth" || info.TrainingPoints < 2 {
		t.Fatalf("register info: %+v", info)
	}

	learned, _, err := c1.Stream(ctx, "smooth", client.StreamOptions{Seed: 7}, inputs)
	if err != nil {
		t.Fatalf("learn stream: %v", err)
	}
	assertContract(t, "learn stream", learned, len(inputs))

	frozen, replayBefore, err := c1.Stream(ctx, "smooth", client.StreamOptions{Frozen: true, Seed: 7}, inputs)
	if err != nil {
		t.Fatalf("frozen replay: %v", err)
	}
	assertContract(t, "frozen replay (before restart)", frozen, len(inputs))
	assertNoUDFCalls(t, "frozen replay", frozen)

	// A bounded query — TEP filter, then top-k on the result — served from
	// the same frozen clones; its bytes must also survive the restart.
	queryReq := map[string]any{
		"udf": "smooth", "seed": 55,
		"rows": func() []map[string]any {
			rows := make([]map[string]any, 12)
			for i := range rows {
				rows[i] = map[string]any{"input": inputs[i]}
			}
			return rows
		}(),
		"predicate": map[string]any{"a": 0.0, "b": 1.5, "theta": 0.05},
		"topk":      map[string]any{"k": 4, "by": "y", "desc": true},
	}
	queryBefore, err := c1.Query(ctx, queryReq)
	if err != nil {
		t.Fatalf("query: %v", err)
	}

	snaps, err := c1.SnapshotAll(ctx)
	if err != nil || len(snaps.Snapshots) != 1 {
		t.Fatalf("snapshot: %+v, %v", snaps, err)
	}

	// /stats must show the service beating Monte Carlo on UDF calls.
	stats, err := c1.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.UDFs) != 1 || stats.UDFs[0].SavedCalls <= 0 {
		t.Fatalf("no UDF-call savings reported: %+v", stats.UDFs)
	}

	p1.shutdown(t) // graceful drain on SIGTERM

	// --- Second lifetime: boot-time restore, then seeded replay. ---
	p2 := startProc(t, bin,
		"-addr", "127.0.0.1:0", "-snapshot-dir", snapDir,
		"-max-inflight", "64", "-workers", "2", "-drain-timeout", "10s")
	c2 := p2.client()

	// The UDF must be back without re-registration, at the same model seq.
	list, err := c2.ListUDFs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.UDFs) != 1 || list.UDFs[0].Name != "smooth" || list.UDFs[0].TrainingPoints < 2 {
		t.Fatalf("restore lost the UDF: %+v", list.UDFs)
	}
	if list.UDFs[0].ModelSeq != snaps.Snapshots[0].ModelSeq {
		t.Fatalf("restored model seq %d, snapshot had %d",
			list.UDFs[0].ModelSeq, snaps.Snapshots[0].ModelSeq)
	}

	frozen2, replayAfter, err := c2.Stream(ctx, "smooth", client.StreamOptions{Frozen: true, Seed: 7}, inputs)
	if err != nil {
		t.Fatalf("frozen replay after restart: %v", err)
	}
	assertContract(t, "frozen replay (after restart)", frozen2, len(inputs))

	// The bounded-query surface replays byte-identically too.
	queryAfter, err := c2.Query(ctx, queryReq)
	if err != nil {
		t.Fatalf("query after restart: %v", err)
	}
	if !bytes.Equal(queryBefore, queryAfter) {
		t.Fatalf("bounded query not bit-identical across restart:\n%s\nvs\n%s",
			queryBefore, queryAfter)
	}

	// The heart of the gate: the restored server replays the exact bytes.
	if !bytes.Equal(replayBefore, replayAfter) {
		for i := range frozen {
			if frozen[i].SupportHash != frozen2[i].SupportHash {
				t.Errorf("first divergence at seq %d: %s vs %s",
					frozen[i].Seq, frozen[i].SupportHash, frozen2[i].SupportHash)
				break
			}
		}
		t.Fatal("snapshot → restart → replay is not bit-identical")
	}

	p2.shutdown(t)
}

// TestE2ESparseSnapshotRestartReplay is the budgeted-sparse twin of the
// restart gate: a UDF registered with a sparse budget learns a stream, the
// server snapshots (carrying the inducing set) and restarts, and the
// restored instance must replay the same seeds bit-identically without
// paying a single UDF call. If the restore dropped the sparse model — say,
// by rebuilding the exact GP instead — the DTC posterior would differ and
// the replay bytes would diverge, so this also pins "sparse in, sparse out".
func TestE2ESparseSnapshotRestartReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and boots the real binary; skipped in -short")
	}
	workDir := t.TempDir()
	bin := buildBinary(t, workDir, "olgapro/cmd/olgaprod")
	snapDir := filepath.Join(workDir, "snapshots")
	inputs := sessionInputs()
	ctx := context.Background()

	p1 := startProc(t, bin,
		"-addr", "127.0.0.1:0", "-snapshot-dir", snapDir,
		"-max-inflight", "64", "-workers", "2", "-drain-timeout", "10s")
	c1 := p1.client()

	if _, err := c1.Register(ctx, client.RegisterRequest{
		UDF: "poly/smooth2d", Name: "thrifty", Eps: 0.2, Delta: 0.1,
		Sparse: &client.SparseSpec{Budget: 64},
		Warmup: inputs[:4], WarmupSeed: 99,
	}); err != nil {
		t.Fatalf("register sparse: %v", err)
	}

	learned, _, err := c1.Stream(ctx, "thrifty", client.StreamOptions{Seed: 7}, inputs)
	if err != nil {
		t.Fatalf("sparse learn stream: %v", err)
	}
	assertContract(t, "sparse learn stream", learned, len(inputs))

	frozen, replayBefore, err := c1.Stream(ctx, "thrifty", client.StreamOptions{Frozen: true, Seed: 7}, inputs)
	if err != nil {
		t.Fatalf("sparse frozen replay: %v", err)
	}
	assertContract(t, "sparse frozen replay (before restart)", frozen, len(inputs))
	assertNoUDFCalls(t, "sparse frozen replay", frozen)

	if _, err := c1.SnapshotAll(ctx); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	p1.shutdown(t)

	p2 := startProc(t, bin,
		"-addr", "127.0.0.1:0", "-snapshot-dir", snapDir,
		"-max-inflight", "64", "-workers", "2", "-drain-timeout", "10s")
	c2 := p2.client()

	// The restored instance advertises its sparse budget: the registration
	// spec survived in the snapshot metadata.
	list, err := c2.ListUDFs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.UDFs) != 1 || list.UDFs[0].Name != "thrifty" || list.UDFs[0].SparseBudget != 64 {
		t.Fatalf("restore lost the sparse registration: %+v", list.UDFs)
	}

	frozen2, replayAfter, err := c2.Stream(ctx, "thrifty", client.StreamOptions{Frozen: true, Seed: 7}, inputs)
	if err != nil {
		t.Fatalf("sparse frozen replay after restart: %v", err)
	}
	assertContract(t, "sparse frozen replay (after restart)", frozen2, len(inputs))
	assertNoUDFCalls(t, "restored sparse replay", frozen2)
	if !bytes.Equal(replayBefore, replayAfter) {
		for i := range frozen {
			if frozen[i].SupportHash != frozen2[i].SupportHash {
				t.Errorf("first divergence at seq %d: %s vs %s",
					frozen[i].Seq, frozen[i].SupportHash, frozen2[i].SupportHash)
				break
			}
		}
		t.Fatal("sparse snapshot → restart → replay is not bit-identical")
	}
	p2.shutdown(t)
}

// freePort reserves a loopback port. Fleet shards must know their own base
// URL (-self) and the full shard list (-fleet) before they boot, so port 0
// discovery is not an option for them.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// ownerOf reports which shard owns the named UDF (lists it as non-replica).
func ownerOf(t *testing.T, ctx context.Context, name string, shards map[string]*client.Client) string {
	t.Helper()
	for url, c := range shards {
		list, err := c.ListUDFs(ctx)
		if err != nil {
			continue
		}
		for _, info := range list.UDFs {
			if info.Name == name && !info.Replica {
				return url
			}
		}
	}
	return ""
}

// TestE2EFleetFailover is the fleet gate: an olgarouter over two olgaprod
// shards, one sparse UDF owned by each, learned through the router and
// replicated as versioned snapshot deltas. Then the hard part — kill -9 one
// shard mid-frozen-stream and assert the stream completes byte-identically
// from the surviving replica, reads keep serving during the outage, and the
// shard restarted from its snapshots replays the same bytes with Bound ≤ ε.
func TestE2EFleetFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and boots real binaries; skipped in -short")
	}
	workDir := t.TempDir()
	prodBin := buildBinary(t, workDir, "olgapro/cmd/olgaprod")
	routerBin := buildBinary(t, workDir, "olgapro/cmd/olgarouter")
	inputs := sessionInputs()
	ctx := context.Background()

	portA, portB := freePort(t), freePort(t)
	urlA := fmt.Sprintf("http://127.0.0.1:%d", portA)
	urlB := fmt.Sprintf("http://127.0.0.1:%d", portB)
	fleetList := urlA + "," + urlB
	dirA := filepath.Join(workDir, "snapA")
	dirB := filepath.Join(workDir, "snapB")

	shardArgs := func(port int, dir, self string) []string {
		return []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", port), "-snapshot-dir", dir,
			"-workers", "2", "-timeout", "10s", "-drain-timeout", "10s",
			"-fleet", fleetList, "-self", self, "-replicas", "2",
		}
	}
	pA := startProc(t, prodBin, shardArgs(portA, dirA, urlA)...)
	pB := startProc(t, prodBin, shardArgs(portB, dirB, urlB)...)
	pR := startProc(t, routerBin, "-addr", "127.0.0.1:0", "-shards", fleetList, "-replicas", "2")

	cl := client.New("http://" + pR.addr)
	shards := map[string]*client.Client{urlA: pA.client(), urlB: pB.client()}

	// Register sparse UDFs through the router, walking candidate names until
	// each shard owns at least one (the ring spreads sequential names, so a
	// handful of attempts suffices).
	ownerUDF := map[string]string{} // shard URL -> a UDF it owns
	for i := 0; i < 16 && (ownerUDF[urlA] == "" || ownerUDF[urlB] == ""); i++ {
		name := fmt.Sprintf("u%d", i)
		if _, err := cl.Register(ctx, client.RegisterRequest{
			Name: name, UDF: "poly/smooth2d", Eps: 0.2, Delta: 0.1,
			Sparse: &client.SparseSpec{Budget: 64},
			Warmup: inputs[:4], WarmupSeed: 99,
		}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
		owner := ownerOf(t, ctx, name, shards)
		if owner == "" {
			t.Fatalf("no shard owns %s after registration", name)
		}
		if ownerUDF[owner] == "" {
			ownerUDF[owner] = name
		}
	}
	if ownerUDF[urlA] == "" || ownerUDF[urlB] == "" {
		t.Fatalf("16 candidate names did not cover both shards: %v", ownerUDF)
	}
	udfA, udfB := ownerUDF[urlA], ownerUDF[urlB]
	t.Logf("shard A owns %s, shard B owns %s", udfA, udfB)

	// Learn both UDFs through the router, then snapshot the whole fleet so a
	// killed shard can restart from disk.
	for _, name := range []string{udfA, udfB} {
		learned, _, err := cl.Stream(ctx, name, client.StreamOptions{Seed: 7}, inputs)
		if err != nil {
			t.Fatalf("learn %s via router: %v", name, err)
		}
		assertContract(t, "learn "+name, learned, len(inputs))
	}
	if _, err := cl.SnapshotAll(ctx); err != nil {
		t.Fatalf("fleet snapshot: %v", err)
	}

	// Wait for replication: each shard must hold the other's UDF as a
	// replica at the owner's model sequence.
	waitReplica := func(c *client.Client, name string, wantSeq int64) {
		deadline := time.Now().Add(20 * time.Second)
		for {
			list, err := c.ListUDFs(ctx)
			if err == nil {
				for _, info := range list.UDFs {
					if info.Name == name && info.Replica && info.ModelSeq >= wantSeq {
						return
					}
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica of %s did not reach seq %d: %+v", name, wantSeq, list)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	seqOf := func(c *client.Client, name string) int64 {
		list, err := c.ListUDFs(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, info := range list.UDFs {
			if info.Name == name {
				return info.ModelSeq
			}
		}
		t.Fatalf("%s not listed", name)
		return 0
	}
	seqA := seqOf(shards[urlA], udfA)
	waitReplica(shards[urlB], udfA, seqA)
	waitReplica(shards[urlA], udfB, seqOf(shards[urlB], udfB))

	// Canonical frozen replay bytes for both UDFs, via the router.
	replay := func(name string) ([]client.StreamResult, []byte) {
		results, raw, err := cl.Stream(ctx, name, client.StreamOptions{Frozen: true, Seed: 7}, inputs)
		if err != nil {
			t.Fatalf("frozen stream %s: %v", name, err)
		}
		return results, raw
	}
	frozenA, rawA := replay(udfA)
	assertContract(t, "frozen "+udfA, frozenA, len(inputs))
	assertNoUDFCalls(t, "frozen "+udfA, frozenA)
	_, rawB := replay(udfB)

	// Kill -9 shard A mid-frozen-stream: the router retries the whole
	// request on the surviving replica, so the stream must complete with
	// exactly the canonical bytes — no torn or divergent response.
	type streamOut struct {
		raw []byte
		err error
	}
	outCh := make(chan streamOut, 1)
	go func() {
		_, raw, err := cl.Stream(ctx, udfA, client.StreamOptions{Frozen: true, Seed: 7}, inputs)
		outCh <- streamOut{raw, err}
	}()
	time.Sleep(30 * time.Millisecond) // let the stream reach shard A
	pA.kill9(t)
	out := <-outCh
	if out.err != nil {
		t.Fatalf("frozen stream across kill -9: %v", out.err)
	}
	if !bytes.Equal(out.raw, rawA) {
		t.Fatalf("failover stream diverged:\n%s\nvs\n%s", out.raw, rawA)
	}

	// Reads keep serving from the survivor during the outage.
	_, rawOutage := replay(udfA)
	if !bytes.Equal(rawOutage, rawA) {
		t.Fatal("replay during outage diverged")
	}
	_, rawOutageB := replay(udfB)
	if !bytes.Equal(rawOutageB, rawB) {
		t.Fatal("unrelated UDF diverged during outage")
	}

	// Restart shard A from its snapshots; it must rejoin at the same model
	// sequence and serve the same bytes directly.
	pA2 := startProc(t, prodBin, shardArgs(portA, dirA, urlA)...)
	cA2 := pA2.client()
	list, err := cA2.ListUDFs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, info := range list.UDFs {
		if info.Name == udfA {
			found = true
			if info.Replica {
				t.Fatalf("restarted owner came back as replica: %+v", info)
			}
			if info.ModelSeq != seqA {
				t.Fatalf("restarted owner at seq %d, want %d", info.ModelSeq, seqA)
			}
		}
	}
	if !found {
		t.Fatalf("restarted shard lost %s: %+v", udfA, list)
	}
	frozenA2, rawA2, err := cA2.Stream(ctx, udfA, client.StreamOptions{Frozen: true, Seed: 7}, inputs)
	if err != nil {
		t.Fatalf("frozen stream on restarted shard: %v", err)
	}
	assertContract(t, "restarted frozen "+udfA, frozenA2, len(inputs))
	if !bytes.Equal(rawA2, rawA) {
		t.Fatal("snapshot-restored shard does not replay bit-identically")
	}

	// And through the router, once its health cooldown re-admits shard A.
	_, rawFinal := replay(udfA)
	if !bytes.Equal(rawFinal, rawA) {
		t.Fatal("post-restart replay via router diverged")
	}

	pR.shutdown(t)
	pA2.shutdown(t)
	pB.shutdown(t)
}
