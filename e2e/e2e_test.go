// Package e2e drives the olgaprod network service end to end as CI does:
// build the real binary, boot it on a loopback port, run a scripted client
// session — register a UDF, stream learning tuples, snapshot, restart the
// process, replay the same seeds — and assert the restored server serves
// bit-identical bytes with every output honoring the (ε, δ) contract.
package e2e

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// olgaprod is one running server process.
type olgaprod struct {
	cmd    *exec.Cmd
	addr   string
	stderr *bytes.Buffer
}

// startServer builds (once) and boots olgaprod with the given snapshot dir,
// returning after the process reported its listen address.
func startServer(t *testing.T, bin, snapDir string) *olgaprod {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-snapshot-dir", snapDir,
		"-max-inflight", "64",
		"-timeout", "30s",
		"-workers", "2",
		"-drain-timeout", "10s",
	)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &olgaprod{cmd: cmd, stderr: &stderr}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})

	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
		io.Copy(io.Discard, stdout)
	}()
	select {
	case line, ok := <-lines:
		if !ok {
			t.Fatalf("olgaprod exited before announcing its address; stderr:\n%s", stderr.String())
		}
		const prefix = "olgaprod listening on "
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("unexpected boot line %q", line)
		}
		p.addr = strings.TrimPrefix(line, prefix)
	case <-time.After(30 * time.Second):
		t.Fatal("olgaprod did not come up within 30s")
	}
	return p
}

// shutdown sends SIGTERM and verifies a clean (graceful-drain) exit.
func (p *olgaprod) shutdown(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("olgaprod exited dirty: %v; stderr:\n%s", err, p.stderr.String())
		}
	case <-time.After(20 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("olgaprod did not drain within 20s; stderr:\n%s", p.stderr.String())
	}
}

func (p *olgaprod) url(path string) string { return "http://" + p.addr + path }

func (p *olgaprod) postJSON(t *testing.T, path string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	resp, err := http.Post(p.url(path), "application/json", rd)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// distSpec / result mirror the wire structures (kept local: this package
// drives the service purely over its public HTTP surface, as a client
// binary would).
type distSpec struct {
	Type  string  `json:"type"`
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
}

type streamResult struct {
	Seq         int64   `json:"seq"`
	Eps         float64 `json:"eps"`
	Bound       float64 `json:"bound"`
	MetBudget   bool    `json:"met_budget"`
	UDFCalls    int     `json:"udf_calls"`
	SupportHash string  `json:"support_hash"`
	Error       string  `json:"error,omitempty"`
}

// session is the scripted 50-tuple workload, deterministic by construction.
func sessionInputs() [][]distSpec {
	rng := rand.New(rand.NewSource(1234))
	inputs := make([][]distSpec, 50)
	for i := range inputs {
		inputs[i] = []distSpec{
			{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.12},
			{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.12},
		}
	}
	return inputs
}

// stream posts the inputs as NDJSON and returns raw bytes + parsed lines.
func (p *olgaprod) stream(t *testing.T, path string, inputs [][]distSpec) (string, []streamResult) {
	t.Helper()
	var buf bytes.Buffer
	for _, in := range inputs {
		line, err := json.Marshal(map[string]any{"input": in})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	resp, err := http.Post(p.url(path), "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("stream %s: %d %s", path, resp.StatusCode, raw)
	}
	var results []streamResult
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var r streamResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if r.Error != "" {
			t.Fatalf("stream error at seq %d: %s", r.Seq, r.Error)
		}
		results = append(results, r)
	}
	return string(raw), results
}

// assertContract checks every served line against the (ε, δ) surface
// contract: Bound ≤ ε.
func assertContract(t *testing.T, phase string, results []streamResult, n int) {
	t.Helper()
	if len(results) != n {
		t.Fatalf("%s: got %d lines, want %d", phase, len(results), n)
	}
	for _, r := range results {
		if !(r.Bound > 0) || r.Bound > r.Eps+1e-12 {
			t.Fatalf("%s: seq %d bound %g violates ε=%g (met_budget=%v)",
				phase, r.Seq, r.Bound, r.Eps, r.MetBudget)
		}
	}
}

func TestE2ESnapshotRestartReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and boots the real binary; skipped in -short")
	}
	workDir := t.TempDir()
	bin := filepath.Join(workDir, "olgaprod")
	build := exec.Command("go", "build", "-o", bin, "olgapro/cmd/olgaprod")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building olgaprod: %v", err)
	}
	snapDir := filepath.Join(workDir, "snapshots")
	inputs := sessionInputs()

	// --- First server lifetime: register, learn, replay, snapshot. ---
	p1 := startServer(t, bin, snapDir)

	status, body := p1.postJSON(t, "/udfs", map[string]any{
		"udf": "poly/smooth2d", "name": "smooth", "eps": 0.2, "delta": 0.1,
		"warmup": [][]distSpec{inputs[0], inputs[1], inputs[2], inputs[3]}, "warmup_seed": 99,
	})
	if status != http.StatusCreated {
		t.Fatalf("register: %d %s", status, body)
	}

	_, learned := p1.stream(t, "/udfs/smooth/stream?seed=7", inputs)
	assertContract(t, "learn stream", learned, len(inputs))

	replayBefore, frozen := p1.stream(t, "/udfs/smooth/stream?learn=false&seed=7", inputs)
	assertContract(t, "frozen replay (before restart)", frozen, len(inputs))
	for _, r := range frozen {
		if r.UDFCalls != 0 {
			t.Fatalf("frozen replay paid %d UDF calls at seq %d", r.UDFCalls, r.Seq)
		}
	}

	// A bounded query — TEP filter, then top-k on the result — served from
	// the same frozen clones; its bytes must also survive the restart.
	queryReq := map[string]any{
		"udf": "smooth", "seed": 55,
		"rows": func() []map[string]any {
			rows := make([]map[string]any, 12)
			for i := range rows {
				rows[i] = map[string]any{"input": inputs[i]}
			}
			return rows
		}(),
		"predicate": map[string]any{"a": 0.0, "b": 1.5, "theta": 0.05},
		"topk":      map[string]any{"k": 4, "by": "y", "desc": true},
	}
	status, queryBefore := p1.postJSON(t, "/v1/query", queryReq)
	if status != 200 {
		t.Fatalf("query: %d %s", status, queryBefore)
	}

	if status, body := p1.postJSON(t, "/snapshot", nil); status != 200 {
		t.Fatalf("snapshot: %d %s", status, body)
	}

	// /stats must show the service beating Monte Carlo on UDF calls.
	resp, err := http.Get(p1.url("/stats"))
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		UDFs []struct {
			Name         string  `json:"name"`
			SavedCalls   int64   `json:"saved_calls"`
			SavingsRatio float64 `json:"savings_ratio"`
		} `json:"udfs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(stats.UDFs) != 1 || stats.UDFs[0].SavedCalls <= 0 {
		t.Fatalf("no UDF-call savings reported: %+v", stats.UDFs)
	}

	p1.shutdown(t) // graceful drain on SIGTERM

	// --- Second lifetime: boot-time restore, then seeded replay. ---
	p2 := startServer(t, bin, snapDir)

	// The UDF must be back without re-registration.
	resp, err = http.Get(p2.url("/udfs"))
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		UDFs []struct {
			Name           string `json:"name"`
			TrainingPoints int64  `json:"training_points"`
		} `json:"udfs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.UDFs) != 1 || list.UDFs[0].Name != "smooth" || list.UDFs[0].TrainingPoints < 2 {
		t.Fatalf("restore lost the UDF: %+v", list.UDFs)
	}

	replayAfter, frozen2 := p2.stream(t, "/udfs/smooth/stream?learn=false&seed=7", inputs)
	assertContract(t, "frozen replay (after restart)", frozen2, len(inputs))

	// The bounded-query surface replays byte-identically too.
	status, queryAfter := p2.postJSON(t, "/v1/query", queryReq)
	if status != 200 {
		t.Fatalf("query after restart: %d %s", status, queryAfter)
	}
	if !bytes.Equal(queryBefore, queryAfter) {
		t.Fatalf("bounded query not bit-identical across restart:\n%s\nvs\n%s",
			queryBefore, queryAfter)
	}

	// The heart of the gate: the restored server replays the exact bytes.
	if replayBefore != replayAfter {
		for i := range frozen {
			if frozen[i].SupportHash != frozen2[i].SupportHash {
				t.Errorf("first divergence at seq %d: %s vs %s",
					frozen[i].Seq, frozen[i].SupportHash, frozen2[i].SupportHash)
				break
			}
		}
		t.Fatal("snapshot → restart → replay is not bit-identical")
	}

	p2.shutdown(t)
}

// TestE2ESparseSnapshotRestartReplay is the budgeted-sparse twin of the
// restart gate: a UDF registered with a sparse budget learns a stream, the
// server snapshots (format v3, carrying the inducing set) and restarts, and
// the restored instance must replay the same seeds bit-identically without
// paying a single UDF call. If the restore dropped the sparse model — say,
// by rebuilding the exact GP instead — the DTC posterior would differ and
// the replay bytes would diverge, so this also pins "sparse in, sparse out".
func TestE2ESparseSnapshotRestartReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and boots the real binary; skipped in -short")
	}
	workDir := t.TempDir()
	bin := filepath.Join(workDir, "olgaprod")
	build := exec.Command("go", "build", "-o", bin, "olgapro/cmd/olgaprod")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building olgaprod: %v", err)
	}
	snapDir := filepath.Join(workDir, "snapshots")
	inputs := sessionInputs()

	p1 := startServer(t, bin, snapDir)

	status, body := p1.postJSON(t, "/udfs", map[string]any{
		"udf": "poly/smooth2d", "name": "thrifty", "eps": 0.2, "delta": 0.1,
		"sparse": map[string]any{"budget": 64},
		"warmup": [][]distSpec{inputs[0], inputs[1], inputs[2], inputs[3]}, "warmup_seed": 99,
	})
	if status != http.StatusCreated {
		t.Fatalf("register sparse: %d %s", status, body)
	}

	_, learned := p1.stream(t, "/udfs/thrifty/stream?seed=7", inputs)
	assertContract(t, "sparse learn stream", learned, len(inputs))

	replayBefore, frozen := p1.stream(t, "/udfs/thrifty/stream?learn=false&seed=7", inputs)
	assertContract(t, "sparse frozen replay (before restart)", frozen, len(inputs))
	for _, r := range frozen {
		if r.UDFCalls != 0 {
			t.Fatalf("sparse frozen replay paid %d UDF calls at seq %d", r.UDFCalls, r.Seq)
		}
	}

	if status, body := p1.postJSON(t, "/snapshot", nil); status != 200 {
		t.Fatalf("snapshot: %d %s", status, body)
	}
	p1.shutdown(t)

	p2 := startServer(t, bin, snapDir)

	// The restored instance advertises its sparse budget: the registration
	// spec survived in the snapshot metadata.
	resp, err := http.Get(p2.url("/udfs"))
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		UDFs []struct {
			Name         string `json:"name"`
			SparseBudget int    `json:"sparse_budget"`
		} `json:"udfs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.UDFs) != 1 || list.UDFs[0].Name != "thrifty" || list.UDFs[0].SparseBudget != 64 {
		t.Fatalf("restore lost the sparse registration: %+v", list.UDFs)
	}

	replayAfter, frozen2 := p2.stream(t, "/udfs/thrifty/stream?learn=false&seed=7", inputs)
	assertContract(t, "sparse frozen replay (after restart)", frozen2, len(inputs))
	for _, r := range frozen2 {
		if r.UDFCalls != 0 {
			t.Fatalf("restored sparse replay paid %d UDF calls at seq %d", r.UDFCalls, r.Seq)
		}
	}
	if replayBefore != replayAfter {
		for i := range frozen {
			if frozen[i].SupportHash != frozen2[i].SupportHash {
				t.Errorf("first divergence at seq %d: %s vs %s",
					frozen[i].Seq, frozen[i].SupportHash, frozen2[i].SupportHash)
				break
			}
		}
		t.Fatal("sparse snapshot → restart → replay is not bit-identical")
	}
	p2.shutdown(t)
}
