package e2e

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"olgapro/client"
	"olgapro/internal/fleet"
)

// TestE2ERebalance is the dynamic-membership gate: an olgarouter over three
// olgaprod shards, a working set learned through the router, then — with a
// frozen stream in flight — a fourth shard joins through POST
// /v1/fleet/members and one original shard leaves. Frozen replays must stay
// byte-identical with every Bound ≤ ε throughout, and the joining shard
// must end up hosting exactly the UDFs the new ring places on it: nothing
// else was re-fetched.
func TestE2ERebalance(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and boots real binaries; skipped in -short")
	}
	workDir := t.TempDir()
	prodBin := buildBinary(t, workDir, "olgapro/cmd/olgaprod")
	routerBin := buildBinary(t, workDir, "olgapro/cmd/olgarouter")
	inputs := sessionInputs()
	replayIn := inputs[:16]
	ctx := context.Background()

	ports := []int{freePort(t), freePort(t), freePort(t), freePort(t)}
	urls := make([]string, 4)
	for i, p := range ports {
		urls[i] = fmt.Sprintf("http://127.0.0.1:%d", p)
	}
	boot := urls[:3]
	bootList := boot[0] + "," + boot[1] + "," + boot[2]

	shardArgs := func(i int, fleetList string) []string {
		return []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-snapshot-dir", filepath.Join(workDir, fmt.Sprintf("snap%d", i)),
			"-workers", "2", "-timeout", "10s", "-drain-timeout", "10s",
			"-fleet", fleetList, "-self", urls[i], "-replicas", "2",
		}
	}
	procs := make([]*proc, 4)
	for i := 0; i < 3; i++ {
		procs[i] = startProc(t, prodBin, shardArgs(i, bootList)...)
	}
	pR := startProc(t, routerBin, "-addr", "127.0.0.1:0", "-shards", bootList, "-replicas", "2")
	cl := client.New("http://" + pR.addr)
	shardCl := make([]*client.Client, 4)
	for i := 0; i < 3; i++ {
		shardCl[i] = procs[i].client()
	}

	// Ten UDFs so the rebalance touches a healthy slice of the ring; the
	// expected placements below use the same hash the fleet does.
	names := make([]string, 10)
	for i := range names {
		names[i] = fmt.Sprintf("r%d", i)
	}
	for _, name := range names {
		if _, err := cl.Register(ctx, client.RegisterRequest{
			Name: name, UDF: "poly/smooth2d", Eps: 0.2, Delta: 0.1,
			Warmup: inputs[:4], WarmupSeed: 99,
		}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
		learned, _, err := cl.Stream(ctx, name, client.StreamOptions{Seed: 7}, inputs[:24])
		if err != nil {
			t.Fatalf("learn %s via router: %v", name, err)
		}
		assertContract(t, "learn "+name, learned, 24)
	}

	// Authoritative model seqs from the router's merged view (owner wins).
	seqOf := func(c *client.Client, name string) int64 {
		t.Helper()
		list, err := c.ListUDFs(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, info := range list.UDFs {
			if info.Name == name {
				return info.ModelSeq
			}
		}
		t.Fatalf("%s not listed", name)
		return 0
	}
	seqs := make(map[string]int64, len(names))
	for _, name := range names {
		seqs[name] = seqOf(cl, name)
	}

	// hostedAt reports the (seq, replica) state of name on one shard.
	hostedAt := func(c *client.Client, name string) (int64, bool, bool) {
		list, err := c.ListUDFs(ctx)
		if err != nil {
			return 0, false, false
		}
		for _, info := range list.UDFs {
			if info.Name == name {
				return info.ModelSeq, info.Replica, true
			}
		}
		return 0, false, false
	}

	// waitSettled polls until, under the given membership, every name's
	// placed shards hold it at the recorded seq with exactly the ring owner
	// promoted.
	waitSettled := func(phase string, members []int) {
		t.Helper()
		memberURLs := make([]string, len(members))
		for i, m := range members {
			memberURLs[i] = urls[m]
		}
		ring, err := fleet.NewRing(memberURLs, 0)
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			settled := true
			for _, name := range names {
				owner := ring.Owner(name)
				for _, u := range ring.Replicas(name, 2) {
					var c *client.Client
					for i, m := range members {
						if memberURLs[i] == u {
							c = shardCl[m]
						}
					}
					seq, replica, ok := hostedAt(c, name)
					if !ok || seq < seqs[name] || replica == (u == owner) {
						settled = false
					}
				}
			}
			if settled {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: fleet did not settle within 30s", phase)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	waitSettled("initial replication", []int{0, 1, 2})

	// Canonical frozen bytes per UDF, via the router.
	replay := func(phase, name string) []byte {
		t.Helper()
		results, raw, err := cl.Stream(ctx, name, client.StreamOptions{Frozen: true, Seed: 7}, replayIn)
		if err != nil {
			t.Fatalf("%s: frozen stream %s: %v", phase, name, err)
		}
		assertContract(t, phase+" frozen "+name, results, len(replayIn))
		assertNoUDFCalls(t, phase+" frozen "+name, results)
		return raw
	}
	canonical := make(map[string][]byte, len(names))
	for _, name := range names {
		canonical[name] = replay("baseline", name)
	}

	// --- Join shard 3 mid-frozen-stream. ---
	// The documented join procedure: the joiner boots knowing only itself;
	// the router's join broadcast delivers the real membership and epoch.
	procs[3] = startProc(t, prodBin, shardArgs(3, urls[3])...)
	shardCl[3] = procs[3].client()

	streamed := make(chan []byte, 1)
	go func() {
		_, raw, err := cl.Stream(ctx, names[0], client.StreamOptions{Frozen: true, Seed: 7}, replayIn)
		if err != nil {
			streamed <- nil
			return
		}
		streamed <- raw
	}()
	time.Sleep(20 * time.Millisecond) // let the stream get in flight
	joined, err := cl.FleetMembers(ctx, client.FleetMembersRequest{Op: "join", Shard: urls[3]})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if joined.Epoch != 1 || len(joined.Shards) != 4 {
		t.Fatalf("join minted %+v, want epoch 1 with 4 shards", joined)
	}
	if raw := <-streamed; raw == nil || !bytes.Equal(raw, canonical[names[0]]) {
		t.Fatalf("frozen stream across the join diverged:\n%s\nvs\n%s", raw, canonical[names[0]])
	}

	waitSettled("post-join", []int{0, 1, 2, 3})

	// The joiner hosts exactly the UDFs the 4-shard ring places on it:
	// anything extra would mean un-moved names were re-fetched.
	ring4, err := fleet.NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	expected := make(map[string]bool)
	for _, name := range names {
		for _, u := range ring4.Replicas(name, 2) {
			if u == urls[3] {
				expected[name] = true
			}
		}
	}
	t.Logf("ring places %d of %d UDFs on the joiner", len(expected), len(names))
	list, err := shardCl[3].ListUDFs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, info := range list.UDFs {
		got[info.Name] = true
	}
	for name := range expected {
		if !got[name] {
			t.Fatalf("joiner is missing re-placed UDF %s: %v", name, got)
		}
	}
	for name := range got {
		if !expected[name] {
			t.Fatalf("joiner fetched %s though its placement did not change", name)
		}
	}

	for _, name := range names {
		if raw := replay("post-join", name); !bytes.Equal(raw, canonical[name]) {
			t.Fatalf("post-join frozen replay of %s diverged", name)
		}
	}

	// --- Leave one original shard. ---
	left, err := cl.FleetMembers(ctx, client.FleetMembersRequest{Op: "leave", Shard: urls[0]})
	if err != nil {
		t.Fatalf("leave: %v", err)
	}
	if left.Epoch != 2 || len(left.Shards) != 3 {
		t.Fatalf("leave minted %+v, want epoch 2 with 3 shards", left)
	}
	waitSettled("post-leave", []int{1, 2, 3})
	for _, name := range names {
		if raw := replay("post-leave", name); !bytes.Equal(raw, canonical[name]) {
			t.Fatalf("post-leave frozen replay of %s diverged", name)
		}
	}

	// The departed shard drains gracefully: its ownership moved on, so a
	// clean SIGTERM exit proves the handoff left nothing behind.
	procs[0].shutdown(t)
	for _, name := range names {
		if raw := replay("post-departure", name); !bytes.Equal(raw, canonical[name]) {
			t.Fatalf("frozen replay of %s diverged after the departed shard exited", name)
		}
	}

	// Learning still lands on the rebalanced owners.
	for _, name := range names[:2] {
		learned, _, err := cl.Stream(ctx, name, client.StreamOptions{Seed: 8}, inputs[24:28])
		if err != nil {
			t.Fatalf("post-rebalance learn %s: %v", name, err)
		}
		assertContract(t, "post-rebalance learn "+name, learned, 4)
	}

	pR.shutdown(t)
	for _, p := range procs[1:] {
		p.shutdown(t)
	}
}
