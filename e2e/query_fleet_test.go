package e2e

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"olgapro/client"
)

// TestE2EQueryFleet is the distributed-query gate: a three-shard fleet
// where three UDF instances are each owned by a different shard must answer
// a bounded query spanning all three — group-by + top-k over the UDF
// outputs — with bytes identical to a single-shard fleet holding all three
// instances, and a single-instance plan must answer identically whether the
// router forwards it whole or decomposes it through the scatter-gather
// path. Then the hard part: kill -9 one owning shard while queries stream
// and assert every answer (retried onto the surviving replica, pinned by
// require_seq) stays byte-identical.
func TestE2EQueryFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and boots real binaries; skipped in -short")
	}
	workDir := t.TempDir()
	prodBin := buildBinary(t, workDir, "olgapro/cmd/olgaprod")
	routerBin := buildBinary(t, workDir, "olgapro/cmd/olgarouter")
	inputs := sessionInputs()
	ctx := context.Background()

	// Fleet A: three shards with replication, behind a router.
	ports := []int{freePort(t), freePort(t), freePort(t)}
	urls := make([]string, 3)
	fleetList := ""
	for i, port := range ports {
		urls[i] = fmt.Sprintf("http://127.0.0.1:%d", port)
		if i > 0 {
			fleetList += ","
		}
		fleetList += urls[i]
	}
	procs := make([]*proc, 3)
	for i, port := range ports {
		procs[i] = startProc(t, prodBin,
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-snapshot-dir", filepath.Join(workDir, fmt.Sprintf("snap%d", i)),
			"-workers", "2", "-timeout", "10s", "-drain-timeout", "10s",
			"-fleet", fleetList, "-self", urls[i], "-replicas", "2",
		)
	}
	pR := startProc(t, routerBin, "-addr", "127.0.0.1:0", "-shards", fleetList, "-replicas", "2")
	clA := client.New("http://" + pR.addr)

	// Fleet B: one plain shard holding every instance, behind its own router.
	portSolo := freePort(t)
	pSolo := startProc(t, prodBin,
		"-addr", fmt.Sprintf("127.0.0.1:%d", portSolo),
		"-snapshot-dir", filepath.Join(workDir, "snapSolo"),
		"-workers", "2", "-timeout", "10s", "-drain-timeout", "10s",
	)
	pRSolo := startProc(t, routerBin, "-addr", "127.0.0.1:0",
		"-shards", fmt.Sprintf("http://127.0.0.1:%d", portSolo), "-replicas", "1")
	clB := client.New("http://" + pRSolo.addr)
	_ = pSolo

	// Register candidate instances identically on both fleets until every
	// fleet-A shard owns one; the same warmup and seed leave both fleets
	// with bit-identical models per name.
	shards := map[string]*client.Client{}
	for i, u := range urls {
		shards[u] = procs[i].client()
	}
	ownerUDF := map[string]string{} // fleet-A shard URL -> a UDF it owns
	covered := func() bool {
		for _, u := range urls {
			if ownerUDF[u] == "" {
				return false
			}
		}
		return true
	}
	for i := 0; i < 24 && !covered(); i++ {
		name := fmt.Sprintf("u%d", i)
		reg := client.RegisterRequest{
			Name: name, UDF: "poly/smooth2d", Eps: 0.2, Delta: 0.1,
			Sparse: &client.SparseSpec{Budget: 64},
			Warmup: inputs[:4], WarmupSeed: 99,
		}
		if _, err := clA.Register(ctx, reg); err != nil {
			t.Fatalf("register %s on fleet A: %v", name, err)
		}
		if _, err := clB.Register(ctx, reg); err != nil {
			t.Fatalf("register %s on fleet B: %v", name, err)
		}
		owner := ownerOf(t, ctx, name, shards)
		if owner == "" {
			t.Fatalf("no shard owns %s after registration", name)
		}
		if ownerUDF[owner] == "" {
			ownerUDF[owner] = name
		}
	}
	if !covered() {
		t.Fatalf("24 candidate names did not cover all three shards: %v", ownerUDF)
	}
	names := []string{ownerUDF[urls[0]], ownerUDF[urls[1]], ownerUDF[urls[2]]}
	t.Logf("instances per shard: %v", names)

	// Pin every query to the owners' model sequences: a mid-catch-up replica
	// answers model_cold and the router retries a caught-up member, so the
	// bytes can never come from stale state.
	requireSeq := map[string]int64{}
	for i, name := range names {
		list, err := shards[urls[i]].ListUDFs(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, info := range list.UDFs {
			if info.Name == name {
				requireSeq[name] = info.ModelSeq
			}
		}
		if requireSeq[name] == 0 {
			t.Fatalf("owner of %s reports no model seq", name)
		}
	}

	rows := make([]client.QueryRow, 12)
	for i := range rows {
		rows[i] = client.QueryRow{
			Input: inputs[10+i],
			Group: string(rune('a' + i%3)),
			UDF:   names[i%3],
		}
	}
	crossPlan := client.QueryRequest{
		Rows: rows, Seed: 17, RequireSeq: requireSeq,
		GroupBy: &client.GroupBySpec{
			Keys: []string{"g"},
			Aggs: []client.AggSpec{
				{Kind: "count"}, {Kind: "sum", Attr: "y"}, {Kind: "avg", Attr: "y"},
				{Kind: "min", Attr: "y"}, {Kind: "max", Attr: "y"},
			},
		},
		TopK: &client.TopKSpec{K: 2, By: "avg_y", Desc: true},
	}

	// Gate 1: the three-shard scatter-gather answer is byte-identical to the
	// single-shard fleet's answer to the same plan.
	wantCross, err := clA.Query(ctx, crossPlan)
	if err != nil {
		t.Fatalf("cross-shard query on fleet A: %v", err)
	}
	soloCross, err := clB.Query(ctx, crossPlan)
	if err != nil {
		t.Fatalf("cross-shard query on fleet B: %v", err)
	}
	if !bytes.Equal(wantCross, soloCross) {
		t.Fatalf("three-shard answer diverged from single-shard fleet:\n%s\nvs\n%s", wantCross, soloCross)
	}

	// Gate 2: a single-instance plan answers identically whether forwarded
	// whole to the shard's /v1/query or decomposed through partials — the
	// merge algebra reproduces the serial operators bit for bit.
	oneFwd := client.QueryRequest{
		UDF: names[1], Seed: 23, RequireSeq: requireSeq,
		Rows: func() []client.QueryRow {
			rs := make([]client.QueryRow, 8)
			for i := range rs {
				rs[i] = client.QueryRow{Input: inputs[30+i], Group: string(rune('a' + i%2))}
			}
			return rs
		}(),
		TopK: &client.TopKSpec{K: 3, By: "y", Desc: true},
	}
	oneScat := oneFwd
	oneScat.Rows = append([]client.QueryRow(nil), oneFwd.Rows...)
	for i := range oneScat.Rows {
		oneScat.Rows[i].UDF = names[1]
	}
	fwdBytes, err := clA.Query(ctx, oneFwd)
	if err != nil {
		t.Fatalf("forwarded single-instance query: %v", err)
	}
	scatBytes, err := clA.Query(ctx, oneScat)
	if err != nil {
		t.Fatalf("scattered single-instance query: %v", err)
	}
	if !bytes.Equal(fwdBytes, scatBytes) {
		t.Fatalf("scatter-gather diverged from forwarded plan:\n%s\nvs\n%s", fwdBytes, scatBytes)
	}

	// Wait until some surviving shard replicates names[0] at the owner's
	// sequence — the failover target for the kill below.
	deadline := time.Now().Add(60 * time.Second)
	for {
		caught := false
		for i, u := range urls {
			if i == 0 {
				continue
			}
			list, err := shards[u].ListUDFs(ctx)
			if err != nil {
				continue
			}
			for _, info := range list.UDFs {
				if info.Name == names[0] && info.Replica && info.ModelSeq >= requireSeq[names[0]] {
					caught = true
				}
			}
		}
		if caught {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no replica of %s caught up to seq %d", names[0], requireSeq[names[0]])
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Gate 3: kill -9 the shard owning names[0] while the cross-shard query
	// streams. Every answer — including those whose scatter was in flight
	// when the shard died — must be retried onto the replica and stay
	// byte-identical.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(50 * time.Millisecond)
		procs[0].kill9(t)
	}()
	deadline = time.Now().Add(30 * time.Second)
	for n := 0; ; n++ {
		got, err := clA.Query(ctx, crossPlan)
		if err != nil {
			t.Fatalf("cross-shard query %d during outage: %v", n, err)
		}
		if !bytes.Equal(got, wantCross) {
			t.Fatalf("cross-shard query %d diverged during outage:\n%s\nvs\n%s", n, got, wantCross)
		}
		select {
		case <-killed:
			if n >= 3 {
				// A few more after the death to prove steady-state failover.
				if n >= 6 {
					return
				}
			}
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("kill window did not close within 30s")
		}
	}
}
