// Package client is the Go client for the olgaprod /v1 HTTP API — the
// single HTTP consumer shared by the fleet router (cmd/olgarouter), the
// end-to-end tests, and the benchmark driver, so the wire contract is
// exercised through one surface instead of ad-hoc request construction.
//
// Every method takes a context (deadlines and cancellation propagate to the
// request), decodes the server's structured error envelope into a typed
// *APIError, and transparently retries admission-control refusals (HTTP
// 429) honoring the envelope's retry_after_ms hint.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"olgapro/internal/server/wire"
)

// APIError is a decoded /v1 error envelope plus its HTTP status. Dispatch
// on Code (stable, machine-readable) rather than Message.
type APIError struct {
	Status  int
	Code    wire.ErrorCode
	Message string
	// RetryAfter is the server's backoff hint (from retry_after_ms or the
	// Retry-After header); zero when the server sent none.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("olgaprod: %s (HTTP %d, code %s)", e.Message, e.Status, e.Code)
}

// IsCode reports whether err is an *APIError carrying the given code.
func IsCode(err error, code wire.ErrorCode) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == code
}

// Option configures a Client.
type Option func(*Client)

// WithToken sets the bearer token sent as "Authorization: Bearer <token>".
func WithToken(token string) Option { return func(c *Client) { c.token = token } }

// WithHTTPClient substitutes the transport — e.g. one with a TLS config
// trusting the fleet's certificate. The default client has no overall
// timeout (per-request deadlines come from the context), which long-poll
// calls like ReplicationList depend on.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// WithRetries caps how many times a 429 is retried (default 3; 0 disables).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// Client talks to one olgaprod shard or olgarouter instance.
type Client struct {
	base    string
	http    *http.Client
	token   string
	retries int
}

// New builds a client for the service at baseURL (e.g. "http://host:9090").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		http:    &http.Client{},
		retries: 3,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the address the client was built for.
func (c *Client) BaseURL() string { return c.base }

// decodeError consumes and closes a non-2xx response body, decoding the
// structured envelope (falling back to the raw body text for non-API
// servers in the request path, e.g. a proxy's plain-text 502).
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
	ae := &APIError{Status: resp.StatusCode, Code: wire.CodeInternal}
	var env wire.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		ae.Code = env.Error.Code
		ae.Message = env.Error.Message
		if env.Error.RetryAfterMS > 0 {
			ae.RetryAfter = time.Duration(env.Error.RetryAfterMS) * time.Millisecond
		}
	} else {
		ae.Message = strings.TrimSpace(string(body))
	}
	if ae.RetryAfter == 0 {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		}
	}
	return ae
}

// Do performs one API request with auth and 429-retry applied, returning
// the raw response (the caller owns the body). Status codes ≥ 300 are
// returned as-is — use doJSON for decoded calls; router-style consumers
// forward the response verbatim.
func (c *Client) Do(ctx context.Context, method, path string, q url.Values, body []byte, contentType string) (*http.Response, error) {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, u, rd)
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if c.token != "" {
			req.Header.Set("Authorization", "Bearer "+c.token)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < c.retries {
			apiErr := decodeError(resp) // closes the body
			wait := time.Second
			var ae *APIError
			if errors.As(apiErr, &ae) && ae.RetryAfter > 0 {
				wait = ae.RetryAfter
			}
			select {
			case <-time.After(wait):
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return resp, nil
	}
}

// doJSON performs a JSON round trip: in (when non-nil) is the request body,
// out (when non-nil) receives the decoded response. Non-2xx responses
// return a typed *APIError.
func (c *Client) doJSON(ctx context.Context, method, path string, q url.Values, in, out any) error {
	var body []byte
	contentType := ""
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body, contentType = b, "application/json"
	}
	resp, err := c.Do(ctx, method, path, q, body, contentType)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// --- registry ---

// Register creates a UDF instance (POST /v1/udfs).
func (c *Client) Register(ctx context.Context, req RegisterRequest) (UDFInfo, error) {
	var info UDFInfo
	err := c.doJSON(ctx, http.MethodPost, "/v1/udfs", nil, req, &info)
	return info, err
}

// ListUDFs lists registered instances (GET /v1/udfs).
func (c *Client) ListUDFs(ctx context.Context) (UDFList, error) {
	var list UDFList
	err := c.doJSON(ctx, http.MethodGet, "/v1/udfs", nil, nil, &list)
	return list, err
}

// Catalog lists the built-in UDFs the server can register (GET /v1/catalog).
func (c *Client) Catalog(ctx context.Context) (CatalogResponse, error) {
	var cat CatalogResponse
	err := c.doJSON(ctx, http.MethodGet, "/v1/catalog", nil, nil, &cat)
	return cat, err
}

// Stats returns per-UDF serving statistics (GET /v1/stats).
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var st StatsResponse
	err := c.doJSON(ctx, http.MethodGet, "/v1/stats", nil, nil, &st)
	return st, err
}

// Healthz probes liveness (GET /v1/healthz); never requires auth.
func (c *Client) Healthz(ctx context.Context) (HealthResponse, error) {
	var h HealthResponse
	err := c.doJSON(ctx, http.MethodGet, "/v1/healthz", nil, nil, &h)
	return h, err
}

// --- evaluation ---

// Eval evaluates one input (POST /v1/udfs/{name}/eval).
func (c *Client) Eval(ctx context.Context, name string, req EvalRequest) (EvalResult, error) {
	var res EvalResult
	err := c.doJSON(ctx, http.MethodPost, "/v1/udfs/"+url.PathEscape(name)+"/eval", nil, req, &res)
	return res, err
}

// Query runs one bounded relational query (POST /v1/query). The request is
// any JSON-marshalable value matching the query wire form; the raw response
// bytes are returned so byte-replay consumers can compare them directly.
func (c *Client) Query(ctx context.Context, req any) (json.RawMessage, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.Do(ctx, http.MethodPost, "/v1/query", nil, b, "application/json")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// RunQuery runs one bounded relational query with a typed request and
// response (POST /v1/query). Against a fleet router, rows naming their own
// UDF instance are scattered to the owning shards and the partial bounded
// states merged back into one answer, bit-identical to a single shard
// holding every instance. Use Query when the raw response bytes matter
// (replay comparison).
func (c *Client) RunQuery(ctx context.Context, req QueryRequest) (QueryResponse, error) {
	var resp QueryResponse
	err := c.doJSON(ctx, http.MethodPost, "/v1/query", nil, req, &resp)
	return resp, err
}

// StreamOptions parameterize one NDJSON stream session.
type StreamOptions struct {
	// Frozen serves the stream from frozen clones (?learn=false): responses
	// become a pure, bit-replayable function of (model state, inputs, seed).
	Frozen bool
	// Seed is the base of the per-tuple seed derivation.
	Seed int64
}

func (o StreamOptions) values() url.Values {
	q := url.Values{}
	if o.Frozen {
		q.Set("learn", "false")
	}
	if o.Seed != 0 {
		q.Set("seed", strconv.FormatInt(o.Seed, 10))
	}
	return q
}

// OpenStream starts an NDJSON stream session (POST /v1/udfs/{name}/stream)
// with a caller-built request body and returns the raw response body for
// incremental reading. The body is buffered bytes (not a reader) so a 429
// refusal can be retried whole.
func (c *Client) OpenStream(ctx context.Context, name string, q url.Values, body []byte) (io.ReadCloser, error) {
	resp, err := c.Do(ctx, http.MethodPost, "/v1/udfs/"+url.PathEscape(name)+"/stream", q, body, "application/x-ndjson")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		return nil, decodeError(resp)
	}
	return resp.Body, nil
}

// StreamBody builds the NDJSON request body for the given inputs.
func StreamBody(inputs []InputSpec) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, in := range inputs {
		if err := enc.Encode(StreamLine{Input: in}); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// Stream evaluates the inputs as one NDJSON session, returning the parsed
// result lines and the raw response bytes (for bit-replay comparison). A
// terminal in-stream error line is surfaced as a typed *APIError alongside
// the lines that preceded it.
func (c *Client) Stream(ctx context.Context, name string, opts StreamOptions, inputs []InputSpec) ([]StreamResult, []byte, error) {
	body, err := StreamBody(inputs)
	if err != nil {
		return nil, nil, err
	}
	rc, err := c.OpenStream(ctx, name, opts.values(), body)
	if err != nil {
		return nil, nil, err
	}
	defer rc.Close()
	raw, err := io.ReadAll(rc)
	if err != nil {
		return nil, raw, err
	}
	var results []StreamResult
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var sr StreamResult
		if err := json.Unmarshal(line, &sr); err != nil {
			return results, raw, fmt.Errorf("client: bad stream line: %w", err)
		}
		if sr.Error != "" {
			code := sr.ErrorCode
			if code == "" {
				code = wire.CodeInternal
			}
			return results, raw, &APIError{Status: http.StatusOK, Code: code, Message: sr.Error}
		}
		results = append(results, sr)
	}
	return results, raw, sc.Err()
}

// --- snapshots ---

// Snapshot persists one UDF's model to the server's snapshot directory
// (POST /v1/udfs/{name}/snapshot).
func (c *Client) Snapshot(ctx context.Context, name string) (SnapshotInfo, error) {
	var info SnapshotInfo
	err := c.doJSON(ctx, http.MethodPost, "/v1/udfs/"+url.PathEscape(name)+"/snapshot", nil, nil, &info)
	return info, err
}

// SnapshotAll persists every registered UDF (POST /v1/snapshot).
func (c *Client) SnapshotAll(ctx context.Context) (SnapshotResponse, error) {
	var resp SnapshotResponse
	err := c.doJSON(ctx, http.MethodPost, "/v1/snapshot", nil, nil, &resp)
	return resp, err
}

// --- replication ---

// ReplicationList returns the shard's hosted-UDF replication states
// (GET /v1/replication/udfs). since ≥ 0 long-polls: the call blocks until
// the shard's registry version exceeds since, the server-side poll window
// lapses, or ctx fires.
func (c *Client) ReplicationList(ctx context.Context, since int64) (ReplicationList, error) {
	q := url.Values{}
	if since >= 0 {
		q.Set("since_version", strconv.FormatInt(since, 10))
	}
	var list ReplicationList
	err := c.doJSON(ctx, http.MethodGet, "/v1/replication/udfs", q, nil, &list)
	return list, err
}

// Membership returns the shard's current fleet membership view
// (GET /v1/replication/members); fails with code not_replicated outside
// fleet mode.
func (c *Client) Membership(ctx context.Context) (Membership, error) {
	var m Membership
	err := c.doJSON(ctx, http.MethodGet, "/v1/replication/members", nil, nil, &m)
	return m, err
}

// OfferMembership offers a shard a membership epoch
// (POST /v1/replication/members); a strictly higher epoch is adopted.
// Returns the membership the shard holds afterwards.
func (c *Client) OfferMembership(ctx context.Context, m Membership) (Membership, error) {
	var out Membership
	err := c.doJSON(ctx, http.MethodPost, "/v1/replication/members", nil, m, &out)
	return out, err
}

// Hint delivers a push-replication seq-bump hint to a replica shard
// (POST /v1/replication/hint).
func (c *Client) Hint(ctx context.Context, h ReplicationHint) error {
	return c.doJSON(ctx, http.MethodPost, "/v1/replication/hint", nil, h, nil)
}

// FleetMembers mutates the fleet's membership through the router's admin
// endpoint (POST /v1/fleet/members, op "join" or "leave"), returning the
// newly minted membership.
func (c *Client) FleetMembers(ctx context.Context, req FleetMembersRequest) (Membership, error) {
	var m Membership
	err := c.doJSON(ctx, http.MethodPost, "/v1/fleet/members", nil, req, &m)
	return m, err
}

// FetchedSnapshot is one pulled model: the raw versioned snapshot bytes
// plus the metadata needed to install it (see wire.HeaderModelSeq/Spec).
type FetchedSnapshot struct {
	Data     []byte
	ModelSeq int64
	Spec     RegisterSpec
}

// FetchSnapshot pulls the named UDF's current model from a shard
// (GET /v1/udfs/{name}/snapshot). minSeq ≥ 0 asks only for state at least
// that new; (nil, nil) means the shard has nothing newer (HTTP 304).
func (c *Client) FetchSnapshot(ctx context.Context, name string, minSeq int64) (*FetchedSnapshot, error) {
	q := url.Values{}
	if minSeq >= 0 {
		q.Set("min_seq", strconv.FormatInt(minSeq, 10))
	}
	resp, err := c.Do(ctx, http.MethodGet, "/v1/udfs/"+url.PathEscape(name)+"/snapshot", q, nil, "")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotModified {
		resp.Body.Close()
		return nil, nil
	}
	if resp.StatusCode >= 300 {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	fs := &FetchedSnapshot{Data: data}
	if v := resp.Header.Get(wire.HeaderModelSeq); v != "" {
		if fs.ModelSeq, err = strconv.ParseInt(v, 10, 64); err != nil {
			return nil, fmt.Errorf("client: bad %s header %q", wire.HeaderModelSeq, v)
		}
	}
	if v := resp.Header.Get(wire.HeaderSpec); v != "" {
		if err := json.Unmarshal([]byte(v), &fs.Spec); err != nil {
			return nil, fmt.Errorf("client: bad %s header: %w", wire.HeaderSpec, err)
		}
	}
	return fs, nil
}
