package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"olgapro/internal/server/wire"
)

func envelope(code wire.ErrorCode, msg string, retryMS int64) string {
	b, _ := json.Marshal(wire.ErrorEnvelope{Error: wire.ErrorDetail{
		Code: code, Message: msg, RetryAfterMS: retryMS,
	}})
	return string(b)
}

// TestRetryOn429 asserts Do transparently retries admission refusals,
// honoring the envelope's retry_after_ms hint.
func TestRetryOn429(t *testing.T) {
	var attempts atomic.Int64
	start := time.Now()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, envelope(wire.CodeOverCapacity, "at capacity", 10))
			return
		}
		fmt.Fprint(w, `{"status":"ok","uptime_sec":1}`)
	}))
	defer ts.Close()

	h, err := New(ts.URL).Healthz(context.Background())
	if err != nil {
		t.Fatalf("retried call failed: %v", err)
	}
	if h.Status != "ok" || attempts.Load() != 3 {
		t.Fatalf("status %q after %d attempts, want ok after 3", h.Status, attempts.Load())
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("client waited only %v, want ≥ 2×retry_after_ms", waited)
	}
}

// TestRetriesExhausted asserts the final 429 surfaces as a typed APIError.
func TestRetriesExhausted(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, envelope(wire.CodeOverCapacity, "at capacity", 1))
	}))
	defer ts.Close()

	_, err := New(ts.URL, WithRetries(1)).Healthz(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 429 || ae.Code != wire.CodeOverCapacity {
		t.Fatalf("err %v, want 429 over_capacity APIError", err)
	}
	if ae.RetryAfter != time.Millisecond {
		t.Fatalf("RetryAfter %v, want 1ms", ae.RetryAfter)
	}
	if attempts.Load() != 2 {
		t.Fatalf("%d attempts, want 2 (1 + 1 retry)", attempts.Load())
	}
	if !IsCode(err, wire.CodeOverCapacity) || IsCode(err, wire.CodeNotFound) {
		t.Fatalf("IsCode misdispatched on %v", err)
	}
}

// TestContextBoundsRetryWait asserts the retry sleep respects the context
// deadline rather than serving it out.
func TestContextBoundsRetryWait(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, envelope(wire.CodeOverCapacity, "at capacity", 60_000))
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := New(ts.URL).Healthz(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want context deadline", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry wait ignored the context deadline")
	}
}

// TestErrorDecoding covers the envelope decode and its fallbacks.
func TestErrorDecoding(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/udfs/gone/eval", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, envelope(wire.CodeNotFound, `no UDF "gone" registered`, 0))
	})
	mux.HandleFunc("/v1/udfs/proxy502/eval", func(w http.ResponseWriter, r *http.Request) {
		// A non-API hop in the request path answers plain text.
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprint(w, "upstream connect error")
	})
	mux.HandleFunc("/v1/udfs/header429/eval", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusTooManyRequests)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL, WithRetries(0))
	ctx := context.Background()

	_, err := c.Eval(ctx, "gone", EvalRequest{})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 404 || ae.Code != wire.CodeNotFound || ae.Message == "" {
		t.Fatalf("envelope decode: %+v", ae)
	}
	_, err = c.Eval(ctx, "proxy502", EvalRequest{})
	if !errors.As(err, &ae) || ae.Status != 502 || ae.Code != wire.CodeInternal || ae.Message != "upstream connect error" {
		t.Fatalf("plain-text fallback: %+v", ae)
	}
	_, err = c.Eval(ctx, "header429", EvalRequest{})
	if !errors.As(err, &ae) || ae.RetryAfter != 2*time.Second {
		t.Fatalf("Retry-After header fallback: %+v", ae)
	}
}

// TestAuthAndPaths asserts the bearer header and /v1 paths on the wire.
func TestAuthAndPaths(t *testing.T) {
	var sawPath, sawAuth string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawPath, sawAuth = r.URL.Path, r.Header.Get("Authorization")
		fmt.Fprint(w, `{"udfs":[]}`)
	}))
	defer ts.Close()

	if _, err := New(ts.URL+"/", WithToken("sekrit")).ListUDFs(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sawPath != "/v1/udfs" {
		t.Fatalf("path %q, want /v1/udfs", sawPath)
	}
	if sawAuth != "Bearer sekrit" {
		t.Fatalf("auth header %q", sawAuth)
	}
}

// TestStreamParsing covers NDJSON parsing and the in-band terminal error.
func TestStreamParsing(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"seq":0,"engine":"GP","support_hash":"aa"}`)
		fmt.Fprintln(w, `{"seq":1,"engine":"GP","support_hash":"bb"}`)
		fmt.Fprintln(w, `{"seq":2,"error":"model not warm","error_code":"model_cold"}`)
	}))
	defer ts.Close()

	results, raw, err := New(ts.URL).Stream(context.Background(), "u", StreamOptions{Frozen: true, Seed: 4},
		[]InputSpec{{{Type: "normal", Mu: 0, Sigma: 1}}})
	if len(results) != 2 || results[1].SupportHash != "bb" {
		t.Fatalf("parsed %d lines: %+v", len(results), results)
	}
	if len(raw) == 0 {
		t.Fatal("raw bytes not returned")
	}
	if !IsCode(err, wire.CodeModelCold) {
		t.Fatalf("terminal stream error: %v, want model_cold", err)
	}
}

// TestStreamBodyShape pins the NDJSON request framing.
func TestStreamBodyShape(t *testing.T) {
	body, err := StreamBody([]InputSpec{
		{{Type: "normal", Mu: 1, Sigma: 2}},
		{{Type: "uniform", Lo: 0.5, Hi: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"input":[{"type":"normal","mu":1,"sigma":2}]}
{"input":[{"type":"uniform","lo":0.5,"hi":1}]}
`
	if string(body) != want {
		t.Fatalf("stream body:\n%s\nwant:\n%s", body, want)
	}
}

// TestFetchSnapshot covers the replication pull call: 304 means current,
// success carries the model seq and spec headers.
func TestFetchSnapshot(t *testing.T) {
	spec := wire.RegisterSpec{Name: "u1", UDF: "poly/smooth2d", Eps: 0.2}
	specJSON, _ := json.Marshal(spec)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("min_seq") == "9" {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set(wire.HeaderModelSeq, "7")
		w.Header().Set(wire.HeaderSpec, string(specJSON))
		w.Write([]byte("snapshot-bytes"))
	}))
	defer ts.Close()
	c := New(ts.URL)
	ctx := context.Background()

	fs, err := c.FetchSnapshot(ctx, "u1", 9)
	if err != nil || fs != nil {
		t.Fatalf("up-to-date fetch: %+v, %v (want nil, nil)", fs, err)
	}
	fs, err = c.FetchSnapshot(ctx, "u1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(fs.Data) != "snapshot-bytes" || fs.ModelSeq != 7 || fs.Spec != spec {
		t.Fatalf("fetched snapshot: %+v", fs)
	}
}

// TestReplicationListCursor pins the long-poll cursor parameter.
func TestReplicationListCursor(t *testing.T) {
	var sawSince string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawSince = r.URL.Query().Get("since_version")
		fmt.Fprint(w, `{"version":12,"udfs":[{"name":"u1","seq":4,"owned":true,"spec":{"udf":"mix/f1"}}]}`)
	}))
	defer ts.Close()
	c := New(ts.URL)

	list, err := c.ReplicationList(context.Background(), 11)
	if err != nil || list.Version != 12 || len(list.UDFs) != 1 || !list.UDFs[0].Owned {
		t.Fatalf("replication list: %+v, %v", list, err)
	}
	if sawSince != "11" {
		t.Fatalf("since_version %q, want 11", sawSince)
	}
	if _, err := c.ReplicationList(context.Background(), -1); err != nil {
		t.Fatal(err)
	}
	if sawSince != "" {
		t.Fatalf("since_version %q for initial list, want absent", sawSince)
	}
}

// TestQueryReturnsRawBytes pins Query's byte-replay contract.
func TestQueryReturnsRawBytes(t *testing.T) {
	const body = `{"udf":"u1","rows":[[{"name":"y","kind":"result"}]],"dropped":0}`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/query" {
			t.Errorf("path %q", r.URL.Path)
		}
		fmt.Fprint(w, body)
	}))
	defer ts.Close()

	raw, err := New(ts.URL).Query(context.Background(), map[string]any{"udf": "u1"})
	if err != nil || string(raw) != body {
		t.Fatalf("query raw: %s, %v", raw, err)
	}
}
