package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"

	"olgapro/client"
)

// ExampleIsCode shows the error contract: every non-2xx response decodes
// into a typed *APIError carrying the envelope's stable machine-readable
// code, and dispatch goes through IsCode (or errors.As) — never through
// the message text.
func ExampleIsCode() {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintln(w, `{"error":{"code":"not_found","message":"no UDF instance \"galage\""}}`)
	}))
	defer srv.Close()

	cl := client.New(srv.URL)
	_, err := cl.RunQuery(context.Background(), client.QueryRequest{
		UDF:  "galage",
		Rows: []client.QueryRow{{Input: client.InputSpec{{Type: "constant", Value: 0.5}}}},
	})

	fmt.Println(client.IsCode(err, client.CodeNotFound))
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		fmt.Println(apiErr.Status, apiErr.Code)
	}
	// Output:
	// true
	// 404 not_found
}
