package client

// Public aliases for the /v1 wire surface, so client consumers outside this
// module can name every request/response type without reaching into
// internal packages.

import "olgapro/internal/server/wire"

type (
	// ErrorCode is a stable, machine-readable failure class (APIError.Code).
	ErrorCode = wire.ErrorCode
	// RegisterSpec is the persistent registration record of one instance.
	RegisterSpec = wire.RegisterSpec
	// RegisterRequest is the POST /v1/udfs body (spec + warm-up inputs).
	RegisterRequest = wire.RegisterRequest
	// SparseSpec selects the budgeted sparse emulator.
	SparseSpec = wire.SparseSpec
	// InputSpec is one uncertain input tuple, attribute name → distribution.
	InputSpec = wire.InputSpec
	// DistSpec is the wire form of one scalar distribution.
	DistSpec = wire.DistSpec
	// EvalRequest is the POST /v1/udfs/{name}/eval body.
	EvalRequest = wire.EvalRequest
	// EvalResult is one evaluated tuple with its (ε, δ) bound metadata.
	EvalResult = wire.EvalResult
	// StreamLine is one NDJSON request line of a stream session.
	StreamLine = wire.StreamLine
	// StreamResult is one NDJSON response line (result or terminal error).
	StreamResult = wire.StreamResult
	// UDFInfo describes one registered instance.
	UDFInfo = wire.UDFInfo
	// UDFList is the GET /v1/udfs response.
	UDFList = wire.UDFList
	// UDFStats is the per-UDF /v1/stats record.
	UDFStats = wire.UDFStats
	// StatsResponse is the GET /v1/stats body.
	StatsResponse = wire.StatsResponse
	// HealthResponse is the GET /v1/healthz body.
	HealthResponse = wire.HealthResponse
	// ShardHealth is one fleet member's liveness as seen by the router.
	ShardHealth = wire.ShardHealth
	// SnapshotInfo describes one persisted snapshot.
	SnapshotInfo = wire.SnapshotInfo
	// SnapshotResponse is the POST /v1/snapshot body.
	SnapshotResponse = wire.SnapshotResponse
	// CatalogUDF is one built-in catalog entry.
	CatalogUDF = wire.CatalogUDF
	// CatalogResponse is the GET /v1/catalog body.
	CatalogResponse = wire.CatalogResponse
	// ReplicaState is one entry of GET /v1/replication/udfs.
	ReplicaState = wire.ReplicaState
	// ReplicationList is the GET /v1/replication/udfs response.
	ReplicationList = wire.ReplicationList
	// Membership is one fleet configuration: a monotonic epoch + shard list.
	Membership = wire.Membership
	// FleetMembersRequest is the POST /v1/fleet/members admin body.
	FleetMembersRequest = wire.FleetMembersRequest
	// ReplicationHint is a push-replication seq-bump notification.
	ReplicationHint = wire.ReplicationHint
	// ErrorDetail and ErrorEnvelope form the structured error body every
	// non-2xx /v1 response carries.
	ErrorDetail   = wire.ErrorDetail
	ErrorEnvelope = wire.ErrorEnvelope
	// PredicateSpec is a §5.5 TEP filter: P(a < y < b) with threshold theta.
	PredicateSpec = wire.PredicateSpec
	// StatSpec picks the scalar statistic an aggregate or ranking reads from
	// an uncertain attribute.
	StatSpec = wire.StatSpec
	// AggSpec is one aggregate column of a window or group-by stage.
	AggSpec = wire.AggSpec
	// TopKSpec is the possible/certain top-k stage of a query plan.
	TopKSpec = wire.TopKSpec
	// WindowSpec is the positional sliding-window stage of a query plan.
	WindowSpec = wire.WindowSpec
	// GroupBySpec is the grouped-aggregation stage of a query plan.
	GroupBySpec = wire.GroupBySpec
	// BoundedJSON is a [certain, possible] interval on the wire.
	BoundedJSON = wire.BoundedJSON
	// QueryRow is one input tuple of a bounded query's request relation.
	QueryRow = wire.QueryRow
	// QueryRequest is the POST /v1/query body.
	QueryRequest = wire.QueryRequest
	// QueryValue is one output attribute of an answer tuple.
	QueryValue = wire.QueryValue
	// QueryResponse is the POST /v1/query answer relation.
	QueryResponse = wire.QueryResponse
)

// MaxQueryRows caps the request relation of one /v1/query (and the merged
// answer of one cross-shard query) — larger workloads should stream.
const MaxQueryRows = wire.MaxQueryRows

// Stable error codes (see wire for the full documentation of each).
const (
	CodeBadSpec          = wire.CodeBadSpec
	CodeUnauthorized     = wire.CodeUnauthorized
	CodeNotFound         = wire.CodeNotFound
	CodeAlreadyExists    = wire.CodeAlreadyExists
	CodeModelCold        = wire.CodeModelCold
	CodeNotOwner         = wire.CodeNotOwner
	CodeOverCapacity     = wire.CodeOverCapacity
	CodeInternal         = wire.CodeInternal
	CodeNotReplicated    = wire.CodeNotReplicated
	CodeUnavailable      = wire.CodeUnavailable
	CodeDraining         = wire.CodeDraining
	CodeDeadlineExceeded = wire.CodeDeadlineExceeded
)
