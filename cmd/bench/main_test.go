package main

import "testing"

// TestFleetQueryBenchRuns smokes the scattered-query harness entries: a
// broken fleet boot or a scatter failure must fail `go test` rather than
// surfacing for the first time in a full bench-json run.
func TestFleetQueryBenchRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("boots in-process shards; skipped in -short")
	}
	for _, shards := range []int{1, 3} {
		res := testing.Benchmark(benchQueryFleet(shards))
		if res.N <= 0 {
			t.Fatalf("%d-shard scatter benchmark did not run", shards)
		}
	}
}
