// Command bench runs the focused performance microbenchmark suite behind the
// BENCH_*.json trajectory files: steady-state GP inference, incremental model
// growth, the full per-tuple evaluation loop, the filtering fast path, the
// hyperparameter gradient/Hessian used by online retraining, and the
// parallel executor's end-to-end throughput at 1/2/4/8 workers.
//
// Usage:
//
//	go run ./cmd/bench -out BENCH_PR3.json [-baseline before.json] [-label name]
//
// The output is a JSON trajectory entry (schema internal/benchfmt) with
// ns/op, B/op, allocs/op — and tuples/sec for the throughput benchmarks —
// so future performance PRs can diff against a recorded baseline;
// cmd/benchdiff is the CI gate that does exactly that. With -baseline, the
// named earlier run is embedded as "before" and per-benchmark speedups are
// computed.
//
// Two throughput families cover the two ways a UDF workload saturates:
//
//   - parallel_eval_table_wN: CPU-bound — frozen GP emulator clones, the
//     steady state of the paper's headline scenario. Scales with physical
//     cores; on a GOMAXPROCS=1 host all N give the same tuples/sec.
//   - parallel_udfio_table_wN: latency-bound — a Monte-Carlo engine over a
//     UDF that blocks ~100µs per call (an external service / native
//     process, the paper's expensive-black-box setting). Pipelining
//     overlaps the blocking, so this family shows near-linear speedup even
//     on a single core.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime"
	"testing"
	"time"

	"olgapro/client"
	"olgapro/internal/benchfmt"
	"olgapro/internal/core"
	"olgapro/internal/dist"
	"olgapro/internal/ecdf"
	"olgapro/internal/exec"
	"olgapro/internal/fleet"
	"olgapro/internal/gp"
	"olgapro/internal/kernel"
	"olgapro/internal/mc"
	"olgapro/internal/query"
	"olgapro/internal/server"
	"olgapro/internal/udf"
)

func measure(name string, f func(b *testing.B)) benchfmt.Result {
	r := testing.Benchmark(f)
	res := benchfmt.Result{
		Name:        name,
		Iters:       r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op %12d B/op %8d allocs/op\n",
		name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	return res
}

// measureThroughput is measure for table benchmarks: one op processes
// tuples tuples, so tuples/sec is derived from ns/op.
func measureThroughput(name string, tuples int, f func(b *testing.B)) benchfmt.Result {
	res := measure(name, f)
	res.TuplesPerSec = float64(tuples) * 1e9 / res.NsPerOp
	fmt.Fprintf(os.Stderr, "%-28s %12.0f tuples/sec\n", "", res.TuplesPerSec)
	return res
}

// smoothUDF is the 2-D test function used throughout: smooth enough for the
// GP to emulate quickly, nonlinear enough to need a real model.
func smoothUDF() udf.Func {
	return udf.FuncOf{D: 2, F: func(x []float64) float64 {
		return x[0]*x[0] + 0.5*x[1] + 0.3*x[0]*x[1]
	}}
}

// trainedGP builds an n-point GP over [0,1]² with well-separated inputs.
func trainedGP(n int) *gp.GP {
	rng := rand.New(rand.NewSource(42))
	g := gp.New(kernel.NewSqExp(1, 0.3), 1e-6)
	f := smoothUDF()
	for g.Len() < n {
		x := []float64{rng.Float64(), rng.Float64()}
		if err := g.Add(x, f.Eval(x)); err != nil {
			continue // numerically duplicate draw; try another
		}
	}
	return g
}

// benchPredictBatch measures steady-state batch inference with
// caller-provided output buffers: the per-sample loop of Algorithm 5.
func benchPredictBatch(b *testing.B) {
	g := trainedGP(400)
	rng := rand.New(rand.NewSource(7))
	const m = 1000
	xs := make([][]float64, m)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
	}
	means := make([]float64, m)
	vars := make([]float64, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PredictBatch(xs, means, vars)
	}
}

// benchPredictBatchScratch measures the same loop through the
// caller-provided-scratch entry point, the form the evaluator hot path
// uses: steady state must be zero allocations per op.
func benchPredictBatchScratch(b *testing.B) {
	g := trainedGP(400)
	rng := rand.New(rand.NewSource(7))
	const m = 1000
	xs := make([][]float64, m)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
	}
	means := make([]float64, m)
	vars := make([]float64, m)
	var s gp.Scratch
	g.PredictBatchWith(&s, xs, means, vars) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PredictBatchWith(&s, xs, means, vars)
	}
}

// benchAddGrowth measures growing a model point-by-point to n=2000 via the
// incremental bordered Cholesky update (paper §5.2).
func benchAddGrowth(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	f := smoothUDF()
	const n = 2000
	xs := make([][]float64, 0, n)
	ys := make([]float64, 0, n)
	for len(xs) < n {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		xs = append(xs, x)
		ys = append(ys, f.Eval(x))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := gp.New(kernel.NewSqExp(1, 0.3), 1e-6)
		for j := range xs {
			if err := g.Add(xs[j], ys[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// sparseGrowthData draws the same input stream benchAddGrowth uses, extended
// to n points, so the exact-vs-sparse growth numbers are comparable.
func sparseGrowthData(n int) (xs [][]float64, ys []float64) {
	rng := rand.New(rand.NewSource(42))
	f := smoothUDF()
	xs = make([][]float64, 0, n)
	ys = make([]float64, 0, n)
	for len(xs) < n {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		xs = append(xs, x)
		ys = append(ys, f.Eval(x))
	}
	return xs, ys
}

// benchSparseAddGrowth measures growing the budgeted sparse model
// point-by-point to n: the tentpole O(m²)-amortized-per-add path that breaks
// the exact model's O(n²)-per-add growth wall. The 8000-point variant, at 4×
// the points, should cost ≈ 4× the 2000-point one (linear in n) where the
// exact model would cost ≈ 64× (cubic aggregate).
func benchSparseAddGrowth(n int) func(b *testing.B) {
	return func(b *testing.B) {
		xs, ys := sparseGrowthData(n)
		cfg := gp.SparseConfig{Budget: 256, SwapEvery: -1}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := gp.NewSparse(kernel.NewSqExp(1, 0.3), 1e-6, cfg)
			if err != nil {
				b.Fatal(err)
			}
			for j := range xs {
				if err := s.Add(xs[j], ys[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// benchSparsePredictSteady measures steady-state sparse batch inference over
// the same 1000-point workload as predict_batch_scratch: cost is O(budget²)
// per sample regardless of the 4000 points absorbed.
func benchSparsePredictSteady(b *testing.B) {
	xs, ys := sparseGrowthData(4000)
	s, err := gp.NewSparse(kernel.NewSqExp(1, 0.3), 1e-6, gp.SparseConfig{Budget: 256, SwapEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	for j := range xs {
		if err := s.Add(xs[j], ys[j]); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	const m = 1000
	qs := make([][]float64, m)
	for i := range qs {
		qs[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	means := make([]float64, m)
	vars := make([]float64, m)
	var sc gp.Scratch
	s.PredictBatchWith(&sc, qs, means, vars) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.PredictBatchWith(&sc, qs, means, vars)
	}
}

// warmEvaluator returns an evaluator whose model has converged on the
// workload, so benchmarked Eval calls measure the steady state.
func warmEvaluator(pred *mc.Predicate) (*core.Evaluator, dist.Vector, [][]float64) {
	cfg := core.Config{
		Kernel:         kernel.NewSqExp(1, 0.5),
		SampleOverride: 1000,
	}
	cfg.Predicate = pred
	ev, err := core.NewEvaluator(smoothUDF(), cfg)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(3))
	in, err := dist.IsoGaussianVec([]float64{0.5, 0.5}, 0.15)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := ev.Eval(in, rng); err != nil {
			panic(err)
		}
	}
	samples := make([][]float64, ev.SampleBudget())
	for i := range samples {
		samples[i] = in.SampleVec(rng, nil)
	}
	return ev, in, samples
}

// benchEvalSamples measures one full steady-state EvalSamples tuple.
func benchEvalSamples(b *testing.B) {
	ev, _, samples := warmEvaluator(nil)
	rng := rand.New(rand.NewSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvalSamples(samples, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFilterFastPath measures the chunked filtering fast path (§5.5): the
// predicate range is far from the output distribution, so tuples are dropped
// after the first inference chunk.
func benchFilterFastPath(b *testing.B) {
	pred := &mc.Predicate{A: 100, B: 200, Theta: 0.5}
	ev, _, samples := warmEvaluator(pred)
	rng := rand.New(rand.NewSource(13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := ev.EvalSamples(samples, rng)
		if err != nil {
			b.Fatal(err)
		}
		if !out.Filtered {
			b.Fatal("tuple unexpectedly not filtered")
		}
	}
}

// benchGradHess measures the gradient+diagonal-Hessian computation driving
// the online retraining heuristic (§5.3) at n=300.
func benchGradHess(b *testing.B) {
	g := trainedGP(300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grad, hess := g.GradHess()
		if len(grad) == 0 || len(hess) == 0 {
			b.Fatal("empty gradient")
		}
	}
}

// greedyBenchSetup builds an evaluator with a 60-point trained model and a
// 400-sample tuple (the paper's cap "for 'optimal greedy' to be feasible"),
// under global inference so the local subset — and thus the per-candidate
// cost — is deterministic across runs.
func greedyBenchSetup() (*core.Evaluator, [][]float64) {
	cfg := core.Config{
		Kernel:          kernel.NewSqExp(1, 0.3),
		Noise:           1e-6,
		GlobalInference: true,
		SampleOverride:  400,
		Tuning:          core.TuneOptimalGreedy,
	}
	ev, err := core.NewEvaluator(smoothUDF(), cfg)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(5))
	for ev.GP().Len() < 60 {
		if err := ev.AddTrainingAt([]float64{rng.Float64(), rng.Float64()}); err != nil {
			continue // numerically duplicate draw; try another
		}
	}
	samples := make([][]float64, 400)
	for i := range samples {
		samples[i] = []float64{0.35 + 0.3*rng.Float64(), 0.35 + 0.3*rng.Float64()}
	}
	return ev, samples
}

// benchTuningPick measures one optimal-greedy tuning pick (§5.2): every
// candidate's simulated envelope bound over the evaluation subset. The rank-1
// fast path replaces the clone-based per-candidate refactorization; both are
// kept in the trajectory so the speedup is visible in one file and the fast
// path is gated once this file becomes the baseline.
func benchTuningPick(useClone bool) func(b *testing.B) {
	return func(b *testing.B) {
		ev, samples := greedyBenchSetup()
		rng := rand.New(rand.NewSource(31))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ev.PickGreedyForBench(samples, rng, useClone); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// throughputTuples is the table size of one throughput-benchmark op.
const throughputTuples = 64

// benchTable builds the uncertain input table shared by the throughput
// benchmarks.
func benchTable() []*query.Tuple {
	rng := rand.New(rand.NewSource(21))
	rel := make([]*query.Tuple, throughputTuples)
	for i := range rel {
		rel[i] = query.MustTuple(
			[]string{"id", "x0", "x1"},
			[]query.Value{
				query.Int(int64(i)),
				query.Uncertain(dist.Normal{Mu: 0.35 + 0.3*rng.Float64(), Sigma: 0.15}),
				query.Uncertain(dist.Normal{Mu: 0.35 + 0.3*rng.Float64(), Sigma: 0.15}),
			},
		)
	}
	return rel
}

// benchParallelEvalTable measures the CPU-bound family: one op drains the
// 64-tuple table through a frozen-emulator pool of the given size, the
// steady state of the paper's headline scenario (zero UDF calls, pure GP
// inference per tuple).
func benchParallelEvalTable(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		ev, _, _ := warmEvaluator(nil)
		pool, err := exec.NewEvaluatorPool(ev, workers)
		if err != nil {
			b.Fatal(err)
		}
		rel := benchTable()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pe := pool.Apply(query.NewScan(rel), []string{"x0", "x1"}, "y", exec.Options{Seed: 17})
			out, err := query.Drain(pe)
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != len(rel) {
				b.Fatalf("drained %d of %d tuples", len(out), len(rel))
			}
		}
	}
}

// ioUDF models the paper's expensive black-box setting: each call blocks
// ~100µs, as an external service or spawned native process would.
func ioUDF() udf.Func {
	inner := smoothUDF()
	return udf.FuncOf{D: 2, F: func(x []float64) float64 {
		time.Sleep(100 * time.Microsecond)
		return inner.Eval(x)
	}}
}

// benchParallelIOTable measures the latency-bound family: a Monte-Carlo
// engine (≈11 blocking UDF calls per tuple at ε=δ=0.3) over the same
// table. Worker pipelining overlaps the blocking, so throughput scales with
// the worker count even on one core.
func benchParallelIOTable(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		eng := query.NewMCEngine(ioUDF(), mc.Config{Eps: 0.3, Delta: 0.3, Metric: mc.MetricDiscrepancy})
		engines := make([]query.Engine, workers)
		for i := range engines {
			engines[i] = eng
		}
		pool, err := exec.NewPool(engines...)
		if err != nil {
			b.Fatal(err)
		}
		rel := benchTable()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pe := pool.Apply(query.NewScan(rel), []string{"x0", "x1"}, "y", exec.Options{Seed: 17})
			out, err := query.Drain(pe)
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != len(rel) {
				b.Fatalf("drained %d of %d tuples", len(out), len(rel))
			}
		}
	}
}

// boundedRelation builds an n-tuple relation whose "y" attribute is a UDF
// result with a synthetic confidence envelope — the input shape of the
// bounded relational operators — plus a 4-way group label. Deterministic;
// built once outside the timed loop.
func boundedRelation(n int) []*query.Tuple {
	rng := rand.New(rand.NewSource(33))
	rel := make([]*query.Tuple, n)
	for i := range rel {
		mid := rng.NormFloat64() * 3
		gap := 0.2 + rng.Float64()
		samples := make([]float64, 32)
		for j := range samples {
			samples[j] = mid + rng.NormFloat64()*0.4
		}
		lower := make([]float64, len(samples))
		upper := make([]float64, len(samples))
		for j, s := range samples {
			lower[j], upper[j] = s-gap, s+gap
		}
		y := query.Result(ecdf.New(samples), 0)
		y.Out = &core.Output{Envelope: &ecdf.Envelope{
			Mean:  ecdf.New(samples),
			Lower: ecdf.New(lower),
			Upper: ecdf.New(upper),
		}}
		rel[i] = query.MustTuple(
			[]string{"id", "g", "y"},
			[]query.Value{
				query.Int(int64(i)),
				query.Str(fmt.Sprintf("g%d", i%4)),
				y,
			},
		)
	}
	return rel
}

// benchQueryTopK measures the bounded top-k operator: per op, rank the
// n-tuple relation on the mean envelope bounds and materialize the possible
// top-k answer set with rank intervals. Single-core and deterministic, so
// non-exempt under the cmd/benchdiff gate.
func benchQueryTopK(n, k int) func(b *testing.B) {
	return func(b *testing.B) {
		rel := boundedRelation(n)
		spec := query.RankSpec{By: "y", K: k, Desc: true}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := query.Drain(query.NewTopK(query.NewScan(rel), spec))
			if err != nil {
				b.Fatal(err)
			}
			if len(out) < k {
				b.Fatalf("possible answer set %d < k=%d", len(out), k)
			}
		}
	}
}

// benchQueryWindow measures the sliding-window bounded aggregates: per op,
// slide a 16-tuple window by 4 over the relation computing count/avg/max
// intervals. Single-core and deterministic, non-exempt under the gate.
func benchQueryWindow(n int) func(b *testing.B) {
	return func(b *testing.B) {
		rel := boundedRelation(n)
		spec := query.WindowSpec{Size: 16, Step: 4, Aggs: []query.Agg{
			query.Count(), query.Avg("y"), query.Max("y"),
		}}
		want := (n-spec.Size)/4 + 1
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := query.Drain(query.NewWindow(query.NewScan(rel), spec))
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != want {
				b.Fatalf("%d windows, want %d", len(out), want)
			}
		}
	}
}

// benchQueryGroupBy measures grouped bounded aggregates over the 4-way
// group label. Single-core and deterministic, non-exempt under the gate.
func benchQueryGroupBy(n int) func(b *testing.B) {
	return func(b *testing.B) {
		rel := boundedRelation(n)
		spec := query.GroupBySpec{Keys: []string{"g"}, Aggs: []query.Agg{
			query.Count(), query.Sum("y"), query.Min("y"),
		}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := query.Drain(query.NewGroupBy(query.NewScan(rel), spec))
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != 4 {
				b.Fatalf("%d groups", len(out))
			}
		}
	}
}

// benchServer boots the olgaprod serving layer in-process (httptest) with a
// registered, warmed smooth UDF, for end-to-end request benchmarks through
// the real HTTP handler: JSON decode, admission, frozen-clone evaluation,
// JSON encode. All traffic goes through the public client package — the
// same surface the router and e2e gates use.
func benchServer(b *testing.B, workers int) (*client.Client, func()) {
	s, err := server.New(server.Config{Workers: workers, MaxInFlight: 512})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	cl := client.New(ts.URL)
	rng := rand.New(rand.NewSource(5))
	warmup := make([]client.InputSpec, 8)
	for i := range warmup {
		warmup[i] = client.InputSpec{
			{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.15},
			{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.15},
		}
	}
	if _, err := cl.Register(context.Background(), client.RegisterRequest{
		UDF: "poly/smooth2d", Name: "bench", Eps: 0.2, Delta: 0.1,
		Warmup: warmup, WarmupSeed: 3,
	}); err != nil {
		b.Fatalf("register: %v", err)
	}
	return cl, func() { ts.Close(); s.Close() }
}

// benchServerEval measures single-tuple serving throughput: one op is one
// POST /eval round trip on the frozen (read) path. The request body is
// marshaled once outside the loop, so the measured work stays server-side.
func benchServerEval(b *testing.B) {
	cl, stop := benchServer(b, 1)
	defer stop()
	learn := false
	req, _ := json.Marshal(client.EvalRequest{
		Input: client.InputSpec{
			{Type: "normal", Mu: 0.5, Sigma: 0.12},
			{Type: "normal", Mu: 0.5, Sigma: 0.12},
		},
		Seed: 11, Learn: &learn,
	})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := cl.Do(ctx, http.MethodPost, "/v1/udfs/bench/eval", nil, req, "application/json")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("eval: %d", resp.StatusCode)
		}
	}
}

// benchServerStream measures NDJSON stream serving: one op streams the
// 64-tuple table through the frozen exec fan-out at the given worker count.
func benchServerStream(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		cl, stop := benchServer(b, workers)
		defer stop()
		rng := rand.New(rand.NewSource(21))
		inputs := make([]client.InputSpec, throughputTuples)
		for i := range inputs {
			inputs[i] = client.InputSpec{
				{Type: "normal", Mu: 0.35 + 0.3*rng.Float64(), Sigma: 0.15},
				{Type: "normal", Mu: 0.35 + 0.3*rng.Float64(), Sigma: 0.15},
			}
		}
		payload, err := client.StreamBody(inputs)
		if err != nil {
			b.Fatal(err)
		}
		q := url.Values{"learn": {"false"}, "seed": {"17"}}
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rc, err := cl.OpenStream(ctx, "bench", q, payload)
			if err != nil {
				b.Fatal(err)
			}
			n, _ := io.Copy(io.Discard, rc)
			rc.Close()
			if n == 0 {
				b.Fatal("stream: empty response")
			}
		}
	}
}

// benchFleetReplicationLag boots a two-shard fleet in-process (owner +
// replica, each with its replication engine) and measures one op as: learn
// one tuple on the owner, then wait until the replica's registry has caught
// up to the owner's model sequence. With hints on, the owner pushes a
// seq-bump hint to the replica set on every registry advance; with hints
// off, the replica relies on its pull loop alone. Both must land far below
// the 500ms poll interval — hints bound the lag by a round trip, and the
// pull path's long-poll wakes on the owner's version bump. Like the other
// multi-goroutine families, trajectory-reported but exempt from the
// regression gate (fleet_* matches the benchdiff exemption).
func benchFleetReplicationLag(hints bool) func(b *testing.B) {
	return func(b *testing.B) {
		boot := func() (*server.Server, *httptest.Server) {
			s, err := server.New(server.Config{Workers: 1, MaxInFlight: 64})
			if err != nil {
				b.Fatal(err)
			}
			return s, httptest.NewServer(s.Handler())
		}
		sA, tsA := boot()
		defer func() { tsA.Close(); sA.Close() }()
		sB, tsB := boot()
		defer func() { tsB.Close(); sB.Close() }()
		addrs := []string{tsA.URL, tsB.URL}
		start := func(s *server.Server, self string) *fleet.Replicator {
			repl, err := fleet.StartReplicator(fleet.ReplicatorConfig{
				Self: self, Shards: addrs, Registry: s.Registry(),
				Replicas: 2, Interval: 500 * time.Millisecond, DisableHints: !hints,
			})
			if err != nil {
				b.Fatal(err)
			}
			s.SetFleetHooks(&server.FleetHooks{
				Membership:      repl.Membership,
				AdoptMembership: repl.AdoptMembership,
				Hint:            repl.Hint,
			})
			return repl
		}
		replA := start(sA, tsA.URL)
		defer replA.Close()
		replB := start(sB, tsB.URL)
		defer replB.Close()

		// Register on the shard the ring owns "lag" on (httptest ports are
		// random, so either shard may hash as owner); the other shard is the
		// replica whose catch-up lag the loop measures. Registering elsewhere
		// would get the registrant demoted once the ring owner catches up.
		ring, err := fleet.NewRing(addrs, 0)
		if err != nil {
			b.Fatal(err)
		}
		ownerSrv, replicaSrv := sA, sB
		ownerURL := tsA.URL
		if ring.Owner("lag") == tsB.URL {
			ownerSrv, replicaSrv = sB, sA
			ownerURL = tsB.URL
		}

		ctx := context.Background()
		clOwner := client.New(ownerURL)
		rng := rand.New(rand.NewSource(5))
		warmup := make([]client.InputSpec, 8)
		for i := range warmup {
			warmup[i] = client.InputSpec{
				{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.15},
				{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.15},
			}
		}
		if _, err := clOwner.Register(ctx, client.RegisterRequest{
			UDF: "poly/smooth2d", Name: "lag", Eps: 0.2, Delta: 0.1,
			Warmup: warmup, WarmupSeed: 3,
		}); err != nil {
			b.Fatalf("register: %v", err)
		}
		ownerEntry, _ := ownerSrv.Registry().Get("lag")
		caughtUp := func(target int64) bool {
			e, ok := replicaSrv.Registry().Get("lag")
			return ok && e.Seq() >= target
		}
		for !caughtUp(ownerEntry.Seq()) {
			time.Sleep(time.Millisecond)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := clOwner.Eval(ctx, "lag", client.EvalRequest{
				Input: client.InputSpec{
					{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.15},
					{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.15},
				},
				Seed: int64(i + 1),
			}); err != nil {
				b.Fatalf("learn eval: %v", err)
			}
			for target := ownerEntry.Seq(); !caughtUp(target); {
				time.Sleep(200 * time.Microsecond)
			}
		}
	}
}

// fleetQueryRows is the request-relation size of one scattered-query op.
const fleetQueryRows = 16

// benchQueryFleet boots nShards in-process shards behind a fleet router,
// registers one UDF instance owned by each shard, and measures one op as a
// distributed bounded query (group-by + top-k over rows spanning every
// instance) through the router's scatter-gather path. The 1-shard variant
// isolates the decompose/merge overhead; the 3-shard variant adds the
// cross-shard fan-out. Timing depends on the host scheduler and loopback
// stack, so fleet_* stays exempt from the regression gate.
func benchQueryFleet(nShards int) func(b *testing.B) {
	return func(b *testing.B) {
		addrs := make([]string, nShards)
		for i := 0; i < nShards; i++ {
			s, err := server.New(server.Config{Workers: 1, MaxInFlight: 64})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())
			addrs[i] = ts.URL
			defer func() { ts.Close(); s.Close() }()
		}
		ring, err := fleet.NewRing(addrs, 0)
		if err != nil {
			b.Fatal(err)
		}
		names := make([]string, 0, nShards)
		for _, addr := range addrs {
			for i := 0; i < 64; i++ {
				if cand := fmt.Sprintf("u%d", i); ring.Owner(cand) == addr {
					names = append(names, cand)
					break
				}
			}
		}
		if len(names) != nShards {
			b.Fatalf("found %d owned instance names for %d shards", len(names), nShards)
		}
		rt, err := fleet.NewRouter(fleet.Config{Shards: addrs, Replicas: 1, Cooldown: 100 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		defer rt.Close()
		tsR := httptest.NewServer(rt.Handler())
		defer tsR.Close()
		cl := client.New(tsR.URL)
		ctx := context.Background()

		rng := rand.New(rand.NewSource(5))
		warmup := make([]client.InputSpec, 8)
		for i := range warmup {
			warmup[i] = client.InputSpec{
				{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.15},
				{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.15},
			}
		}
		for _, name := range names {
			if _, err := cl.Register(ctx, client.RegisterRequest{
				UDF: "poly/smooth2d", Name: name, Eps: 0.2, Delta: 0.1,
				Warmup: warmup, WarmupSeed: 3,
			}); err != nil {
				b.Fatalf("register %s: %v", name, err)
			}
		}
		rows := make([]client.QueryRow, fleetQueryRows)
		for i := range rows {
			rows[i] = client.QueryRow{
				Input: client.InputSpec{
					{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.15},
					{Type: "normal", Mu: 0.3 + 0.4*rng.Float64(), Sigma: 0.15},
				},
				Group: string(rune('a' + i%3)),
				UDF:   names[i%len(names)],
			}
		}
		req := client.QueryRequest{
			Rows: rows, Seed: 11,
			GroupBy: &client.GroupBySpec{
				Keys: []string{"g"},
				Aggs: []client.AggSpec{{Kind: "count"}, {Kind: "avg", Attr: "y"}},
			},
			TopK: &client.TopKSpec{K: 2, By: "avg_y", Desc: true},
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.RunQuery(ctx, req); err != nil {
				b.Fatalf("scattered query: %v", err)
			}
		}
	}
}

func main() {
	out := flag.String("out", "", "write the run (or comparison) JSON to this file; stdout when empty")
	baseline := flag.String("baseline", "", "earlier run JSON to embed as the before side")
	label := flag.String("label", "", "label recorded in the run")
	flag.Parse()

	run := &benchfmt.Run{
		Schema:     benchfmt.SchemaRun,
		Label:      *label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	run.Results = append(run.Results,
		measure("predict_batch_steady", benchPredictBatch),
		measure("predict_batch_scratch", benchPredictBatchScratch),
		measure("gp_add_growth_2000", benchAddGrowth),
		measure("gp_sparse_add_growth_2000", benchSparseAddGrowth(2000)),
		measure("gp_sparse_add_growth_8000", benchSparseAddGrowth(8000)),
		measure("gp_sparse_predict_steady", benchSparsePredictSteady),
		measure("eval_samples_steady", benchEvalSamples),
		measure("filter_fast_path", benchFilterFastPath),
		measure("grad_hess_n300", benchGradHess),
		measure("tuning_pick_rank1", benchTuningPick(false)),
		measure("tuning_pick_clone", benchTuningPick(true)),
	)
	for _, w := range []int{1, 2, 4, 8} {
		run.Results = append(run.Results, measureThroughput(
			fmt.Sprintf("parallel_eval_table_w%d", w), throughputTuples, benchParallelEvalTable(w)))
	}
	for _, w := range []int{1, 2, 4, 8} {
		run.Results = append(run.Results, measureThroughput(
			fmt.Sprintf("parallel_udfio_table_w%d", w), throughputTuples, benchParallelIOTable(w)))
	}
	// Bounded relational operators (PR 6): single-core, deterministic, and
	// therefore fully gated by cmd/benchdiff (no exemption pattern matches).
	run.Results = append(run.Results,
		measure("query_topk_n512_k16", benchQueryTopK(512, 16)),
		measure("query_topk_n4096_k64", benchQueryTopK(4096, 64)),
		measure("query_window_n512", benchQueryWindow(512)),
		measure("query_groupby_n512", benchQueryGroupBy(512)),
	)
	// Serving layer: requests/sec through the real HTTP handler. Like the
	// parallel_* family these depend on host cores and scheduler, so they
	// are trajectory-reported but exempt from the regression gate (the
	// benchdiff -exempt default covers server_*).
	run.Results = append(run.Results, measureThroughput("server_eval_rps", 1, benchServerEval))
	for _, w := range []int{1, 4} {
		run.Results = append(run.Results, measureThroughput(
			fmt.Sprintf("server_stream_rps_w%d", w), throughputTuples, benchServerStream(w)))
	}
	// Fleet replication lag (PR 9): one op = a learn on the owner plus the
	// wait until the replica catches up. Both variants must land far below
	// the 500ms poll interval; timing depends on the host scheduler, so
	// fleet_* is exempt from the regression gate like parallel_*/server_*.
	run.Results = append(run.Results,
		measure("fleet_replication_lag_hints", benchFleetReplicationLag(true)),
		measure("fleet_replication_lag_pull", benchFleetReplicationLag(false)),
	)
	// Distributed bounded queries (PR 10): one op = one group-by + top-k
	// plan scattered across the fleet and merged at the router. fleet_*
	// keeps these exempt from the regression gate (scheduler-dependent).
	run.Results = append(run.Results,
		measureThroughput("fleet_query_scatter_1shard", fleetQueryRows, benchQueryFleet(1)),
		measureThroughput("fleet_query_scatter_3shard", fleetQueryRows, benchQueryFleet(3)),
	)

	var payload any = run
	if *baseline != "" {
		before, err := benchfmt.ReadRun(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: read baseline: %v\n", err)
			os.Exit(1)
		}
		cmp := &benchfmt.Comparison{
			Schema:   benchfmt.SchemaCmp,
			Date:     run.Date,
			Before:   before,
			After:    run,
			Speedups: map[string]float64{},
		}
		byName := before.ByName()
		for _, r := range run.Results {
			if b, ok := byName[r.Name]; ok && r.NsPerOp > 0 {
				cmp.Speedups[r.Name] = b.NsPerOp / r.NsPerOp
			}
		}
		payload = cmp
	}

	enc, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: encode: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", *out)
}
