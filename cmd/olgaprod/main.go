// Command olgaprod serves the OLGAPRO evaluation pipeline over HTTP/JSON:
// a long-lived process that keeps one warm, tuning-enabled GP emulator per
// registered UDF so the expensive online learning is paid once and reused
// across every request — the serving form of the paper's core economics.
//
// API (see the README "Serving" section for curl examples):
//
//	GET  /healthz                  liveness + in-flight gauge
//	GET  /stats                    per-UDF counters incl. UDF-call savings vs MC
//	GET  /catalog                  built-in registrable UDFs
//	GET  /udfs                     registered instances
//	POST /udfs                     register {"udf":"mix/f1","eps":0.1,...}
//	POST /udfs/{name}/eval         one tuple {"input":[{"type":"normal",...}]}
//	POST /udfs/{name}/stream       NDJSON tuple stream; ?learn=false&seed=S
//	                               serves frozen, bit-replayable output
//	POST /udfs/{name}/snapshot     persist trained GP state to -snapshot-dir
//	POST /snapshot                 persist every registered UDF
//
// On boot, snapshots found in -snapshot-dir are restored, so a restarted
// server skips re-learning. SIGTERM/SIGINT drain gracefully: in-flight
// requests finish (up to -drain-timeout), new ones are refused with 503.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"olgapro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	snapshotDir := flag.String("snapshot-dir", "", "directory for GP snapshots (empty disables persistence)")
	maxInFlight := flag.Int("max-inflight", 256, "max tuples in flight before 429")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	workers := flag.Int("workers", 0, "frozen-clone slots per UDF (≤ 0 = GOMAXPROCS)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown budget for in-flight requests")
	flag.Parse()

	if err := run(*addr, *snapshotDir, *maxInFlight, *timeout, *workers, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(addr, snapshotDir string, maxInFlight int, timeout time.Duration, workers int, drainTimeout time.Duration) error {
	logger := log.New(os.Stderr, "olgaprod: ", log.LstdFlags)
	srv, err := server.New(server.Config{
		SnapshotDir:    snapshotDir,
		MaxInFlight:    maxInFlight,
		RequestTimeout: timeout,
		Workers:        workers,
		Logf:           func(format string, args ...any) { logger.Printf(format, args...) },
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The resolved address goes to stdout so scripted drivers (the e2e CI
	// job) can boot on port 0 and discover the port.
	fmt.Printf("olgaprod listening on %s\n", ln.Addr())
	os.Stdout.Sync()

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Printf("signal received; draining (budget %s)", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Printf("drain incomplete: %v", err)
	}
	srv.Close()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("shutdown complete")
	return nil
}
