// Command olgaprod serves the OLGAPRO evaluation pipeline over HTTP/JSON:
// a long-lived process that keeps one warm, tuning-enabled GP emulator per
// registered UDF so the expensive online learning is paid once and reused
// across every request — the serving form of the paper's core economics.
//
// API, under /v1 (unversioned aliases remain for one release; see the
// README "Serving" section for curl examples):
//
//	GET  /v1/healthz                  liveness + in-flight gauge
//	GET  /v1/stats                    per-UDF counters incl. UDF-call savings vs MC
//	GET  /v1/catalog                  built-in registrable UDFs
//	GET  /v1/udfs                     registered instances
//	POST /v1/udfs                     register {"udf":"mix/f1","eps":0.1,...}
//	POST /v1/udfs/{name}/eval         one tuple {"input":[{"type":"normal",...}]}
//	POST /v1/udfs/{name}/stream       NDJSON tuple stream; ?learn=false&seed=S
//	                                  serves frozen, bit-replayable output
//	POST /v1/udfs/{name}/snapshot     persist trained GP state to -snapshot-dir
//	POST /v1/snapshot                 persist every registered UDF
//	POST /v1/query                    bounded relational query on frozen clones
//	GET  /v1/replication/udfs         hosted UDFs + model seqs (long-polls)
//	GET  /v1/udfs/{name}/snapshot     raw snapshot bytes for replication
//	GET  /v1/replication/members      current membership epoch + shard list
//	POST /v1/replication/members      adopt a higher membership epoch
//	POST /v1/replication/hint         push-replication seq-bump hint
//
// On boot, snapshots found in -snapshot-dir are restored, so a restarted
// server skips re-learning. SIGTERM/SIGINT drain gracefully: in-flight
// requests finish (up to -drain-timeout), new ones are refused with 503.
//
// Fleet mode: -fleet lists the boot-time shard base URLs (membership
// epoch 0) and -self names this process's own; the shard then pulls models
// owned by its peers as versioned snapshot deltas and serves them as
// frozen read replicas. A shard joining an already-running fleet boots
// with -fleet <its own URL> and is announced through the router's
// POST /v1/fleet/members, which broadcasts the new epoch. Front the fleet
// with cmd/olgarouter.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"olgapro/internal/fleet"
	"olgapro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	snapshotDir := flag.String("snapshot-dir", "", "directory for GP snapshots (empty disables persistence)")
	snapshotKeep := flag.Int("snapshot-keep", 3, "sequence-stamped snapshot files retained per UDF")
	maxInFlight := flag.Int("max-inflight", 256, "max tuples in flight before 429")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	workers := flag.Int("workers", 0, "frozen-clone slots per UDF (≤ 0 = GOMAXPROCS)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown budget for in-flight requests")
	authToken := flag.String("auth-token", "", "bearer token required on every request (health checks exempt)")
	tlsCert := flag.String("tls-cert", "", "TLS certificate file (with -tls-key enables TLS)")
	tlsKey := flag.String("tls-key", "", "TLS private key file")
	fleetShards := flag.String("fleet", "", "comma-separated base URLs of every fleet shard (enables replication)")
	self := flag.String("self", "", "this shard's own base URL within -fleet")
	replicas := flag.Int("replicas", 2, "fleet replication factor (owner + successors)")
	flag.Parse()

	if err := run(options{
		addr: *addr, snapshotDir: *snapshotDir, snapshotKeep: *snapshotKeep,
		maxInFlight: *maxInFlight, timeout: *timeout, workers: *workers,
		drainTimeout: *drainTimeout, authToken: *authToken,
		tlsCert: *tlsCert, tlsKey: *tlsKey,
		fleet: *fleetShards, self: *self, replicas: *replicas,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type options struct {
	addr, snapshotDir          string
	snapshotKeep, maxInFlight  int
	timeout, drainTimeout      time.Duration
	workers                    int
	authToken, tlsCert, tlsKey string
	fleet, self                string
	replicas                   int
}

func run(o options) error {
	logger := log.New(os.Stderr, "olgaprod: ", log.LstdFlags)
	srv, err := server.New(server.Config{
		SnapshotDir:    o.snapshotDir,
		SnapshotKeep:   o.snapshotKeep,
		MaxInFlight:    o.maxInFlight,
		RequestTimeout: o.timeout,
		Workers:        o.workers,
		AuthToken:      o.authToken,
		Logf:           func(format string, args ...any) { logger.Printf(format, args...) },
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	// The resolved address goes to stdout so scripted drivers (the e2e CI
	// job) can boot on port 0 and discover the port.
	fmt.Printf("olgaprod listening on %s\n", ln.Addr())
	os.Stdout.Sync()

	var repl *fleet.Replicator
	if o.fleet != "" {
		var shards []string
		for _, s := range strings.Split(o.fleet, ",") {
			if s = strings.TrimSpace(s); s != "" {
				shards = append(shards, s)
			}
		}
		if o.self == "" {
			return errors.New("olgaprod: -fleet requires -self (this shard's base URL)")
		}
		repl, err = fleet.StartReplicator(fleet.ReplicatorConfig{
			Self:      o.self,
			Shards:    shards,
			Registry:  srv.Registry(),
			Replicas:  o.replicas,
			AuthToken: o.authToken,
			Logf:      func(format string, args ...any) { logger.Printf(format, args...) },
		})
		if err != nil {
			return err
		}
		// Wire the replicator into the HTTP surface: replication lists gossip
		// the membership epoch, POST /v1/replication/members feeds adopted
		// epochs in, and POST /v1/replication/hint delivers push hints.
		srv.SetFleetHooks(&server.FleetHooks{
			Membership:      repl.Membership,
			AdoptMembership: repl.AdoptMembership,
			Hint:            repl.Hint,
		})
		logger.Printf("fleet replication on: %d shards, self=%s, factor %d", len(shards), o.self, o.replicas)
	}

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		if o.tlsCert != "" || o.tlsKey != "" {
			errCh <- httpSrv.ServeTLS(ln, o.tlsCert, o.tlsKey)
		} else {
			errCh <- httpSrv.Serve(ln)
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Printf("signal received; draining (budget %s)", o.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Printf("drain incomplete: %v", err)
	}
	if repl != nil {
		repl.Close()
	}
	srv.Close()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("shutdown complete")
	return nil
}
