package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSlugOf(t *testing.T) {
	cases := map[string]string{
		"Quick start":                     "quick-start",
		"The /v1 API":                     "the-v1-api",
		"Bounded queries: POST /v1/query": "bounded-queries-post-v1query",
		"How (ε, δ) maps onto HTTP":       "how-ε-δ-maps-onto-http",
		"Snapshot / restore":              "snapshot--restore",
		"`make ci` and friends":           "make-ci-and-friends",
		"Cross-shard queries":             "cross-shard-queries",
	}
	for heading, want := range cases {
		if got := slugOf(heading); got != want {
			t.Errorf("slugOf(%q) = %q, want %q", heading, got, want)
		}
	}
}

func TestCheckFileFindsBrokenLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "other.md", "# Other\n\n## Real Section\n")
	main := write(t, dir, "main.md",
		"# Main\n\n"+
			"[ok file](other.md)\n"+
			"[ok anchor](other.md#real-section)\n"+
			"[ok self](#main)\n"+
			"[external](https://example.com/nope)\n"+
			"```\n[not a link](missing-in-fence.md)\n```\n"+
			"[gone](missing.md)\n"+
			"[bad anchor](other.md#no-such)\n"+
			"[bad self](#nope)\n")
	msgs := checkFile(main)
	if len(msgs) != 3 {
		t.Fatalf("want exactly 3 broken links, got %d: %v", len(msgs), msgs)
	}
	for i, wantSub := range []string{"missing.md", "no-such", "#nope"} {
		if !strings.Contains(msgs[i], wantSub) {
			t.Errorf("message %d = %q, want mention of %q", i, msgs[i], wantSub)
		}
	}
}

func TestAnchorsDeduplicateLikeGitHub(t *testing.T) {
	dir := t.TempDir()
	f := write(t, dir, "dup.md", "# Setup\n\n## Setup\n\n### Setup\n")
	a := anchorsOf(f)
	for _, want := range []string{"setup", "setup-1", "setup-2"} {
		if !a[want] {
			t.Errorf("missing anchor %q in %v", want, a)
		}
	}
}
