// Command linkcheck validates the markdown link graph of the repository
// docs: every relative link must point at a file that exists, and every
// fragment (in-page or cross-page) must match a heading anchor under
// GitHub's slug rules. External http(s) and mailto links are skipped —
// the tool is a CI gate and must not depend on the network.
//
//	go run ./cmd/linkcheck README.md docs
//
// Arguments are markdown files or directories (walked for *.md). Exits
// non-zero listing every broken link.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file-or-dir>...")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
	}
	sort.Strings(files)

	broken := 0
	for _, file := range files {
		for _, msg := range checkFile(file) {
			fmt.Fprintf(os.Stderr, "%s: %s\n", file, msg)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d file(s) ok\n", len(files))
}

// checkFile returns one message per broken link in the file.
func checkFile(file string) []string {
	body, err := os.ReadFile(file)
	if err != nil {
		return []string{err.Error()}
	}
	var msgs []string
	for _, target := range linksOf(string(body)) {
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
			strings.HasPrefix(target, "mailto:") {
			continue
		}
		path, frag, _ := strings.Cut(target, "#")
		dest := file
		if path != "" {
			dest = filepath.Join(filepath.Dir(file), path)
			if _, err := os.Stat(dest); err != nil {
				msgs = append(msgs, fmt.Sprintf("broken link %q: no such file", target))
				continue
			}
		}
		if frag == "" {
			continue
		}
		if !strings.HasSuffix(dest, ".md") {
			// A fragment into a non-markdown file (e.g. a source line
			// anchor) is beyond what we can validate offline.
			continue
		}
		if !anchorsOf(dest)[frag] {
			msgs = append(msgs, fmt.Sprintf("broken link %q: no heading anchor #%s in %s", target, frag, dest))
		}
	}
	return msgs
}

// linksOf extracts inline-link targets, ignoring fenced code blocks (a
// `](` inside an example would otherwise read as a link).
func linksOf(body string) []string {
	var targets []string
	inFence := false
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			targets = append(targets, m[1])
		}
	}
	return targets
}

// anchorsOf returns the set of GitHub-style heading slugs of a markdown
// file: lowercase, punctuation stripped, spaces to hyphens.
func anchorsOf(file string) map[string]bool {
	anchors := map[string]bool{}
	body, err := os.ReadFile(file)
	if err != nil {
		return anchors
	}
	inFence := false
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimLeft(line, "#")
		if heading == line || !strings.HasPrefix(heading, " ") {
			continue
		}
		slug := slugOf(strings.TrimSpace(heading))
		// GitHub de-duplicates repeated headings as slug-1, slug-2, ...
		for i := 0; ; i++ {
			candidate := slug
			if i > 0 {
				candidate = fmt.Sprintf("%s-%d", slug, i)
			}
			if !anchors[candidate] {
				anchors[candidate] = true
				break
			}
		}
	}
	return anchors
}

// slugOf lowercases, keeps letters/digits/hyphens/spaces (markdown
// emphasis and code backticks are stripped), and turns spaces to hyphens.
func slugOf(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r == ' ':
			b.WriteRune('-')
		case r == '-' || r == '_':
			b.WriteRune(r)
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r > 127: // non-ASCII letters survive slugging
			b.WriteRune(r)
		}
	}
	return b.String()
}
