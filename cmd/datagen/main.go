// Command datagen writes a synthetic SDSS-like galaxy catalog as CSV, with
// uncertain position and redshift attributes (mean + 1σ error columns).
//
// Usage:
//
//	datagen [-n count] [-seed s] [-o file]
package main

import (
	"flag"
	"fmt"
	"os"

	"olgapro/internal/sdss"
)

func main() {
	n := flag.Int("n", 1000, "number of galaxies")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	cat := sdss.Generate(sdss.GenerateConfig{N: *n, Seed: *seed})
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := cat.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
