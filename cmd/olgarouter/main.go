// Command olgarouter fronts a sharded olgaprod fleet: a stateless HTTP
// router that places each UDF instance on its owning writer shard with a
// consistent-hash ring, forwards registration and learning traffic to the
// owner, and fans frozen (bit-replayable) eval/stream/query reads across
// the owner's replica set with whole-request retry on shard failure.
//
// The router speaks the same /v1 surface as a single shard, so clients
// need no fleet awareness: point olgapro/client (or curl) at the router
// and the fleet behaves like one scaled-out olgaprod.
//
//	olgarouter -addr :9090 -shards http://10.0.0.1:8080,http://10.0.0.2:8080
//
// The router is also the fleet's membership admin: -shards is only the
// boot-time list (epoch 0), and POST /v1/fleet/members with
// {"op":"join"|"leave","shard":"<base URL>"} mints the next membership
// epoch, re-routes traffic immediately, and broadcasts the epoch to every
// shard (GET /v1/fleet/members reports the current view). Only names whose
// ring replica set actually changed move; the departing owner keeps
// serving frozen reads until its successor has caught up.
//
// Optional -auth-token guards the router's listener and is forwarded to
// the shards as the fleet credential; -tls-cert/-tls-key serve TLS.
package main

import (
	"context"
	"crypto/tls"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"olgapro/internal/fleet"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address (host:port; port 0 picks a free port)")
	shards := flag.String("shards", "", "comma-separated shard base URLs (required)")
	replicas := flag.Int("replicas", 2, "replication factor (owner + successors) for frozen reads")
	authToken := flag.String("auth-token", "", "bearer token required from clients and sent to shards")
	tlsCert := flag.String("tls-cert", "", "TLS certificate file (with -tls-key enables TLS)")
	tlsKey := flag.String("tls-key", "", "TLS private key file")
	insecureShards := flag.Bool("insecure-shards", false, "skip TLS verification on shard connections (self-signed fleet certs)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown budget for in-flight requests")
	flag.Parse()

	if err := run(*addr, *shards, *replicas, *authToken, *tlsCert, *tlsKey, *insecureShards, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(addr, shards string, replicas int, authToken, tlsCert, tlsKey string, insecureShards bool, drainTimeout time.Duration) error {
	logger := log.New(os.Stderr, "olgarouter: ", log.LstdFlags)
	var shardList []string
	for _, s := range strings.Split(shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shardList = append(shardList, s)
		}
	}
	if len(shardList) == 0 {
		return errors.New("olgarouter: -shards is required (comma-separated base URLs)")
	}
	cfg := fleet.Config{
		Shards:    shardList,
		Replicas:  replicas,
		AuthToken: authToken,
		Logf:      func(format string, args ...any) { logger.Printf(format, args...) },
	}
	if insecureShards {
		cfg.HTTPClient = &http.Client{Transport: &http.Transport{
			TLSClientConfig: &tls.Config{InsecureSkipVerify: true},
		}}
	}
	rt, err := fleet.NewRouter(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The resolved address goes to stdout so scripted drivers (the e2e
	// fleet CI job) can boot on port 0 and discover the port.
	fmt.Printf("olgarouter listening on %s\n", ln.Addr())
	os.Stdout.Sync()

	httpSrv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		if tlsCert != "" || tlsKey != "" {
			errCh <- httpSrv.ServeTLS(ln, tlsCert, tlsKey)
		} else {
			errCh <- httpSrv.Serve(ln)
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Printf("signal received; draining (budget %s)", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Printf("drain incomplete: %v", err)
	}
	rt.Close()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("shutdown complete")
	return nil
}
