// Command benchdiff is the CI benchmark-regression gate: it compares a
// fresh cmd/bench run against a committed BENCH_*.json baseline and exits 1
// when a hot-path benchmark regressed.
//
// Usage:
//
//	go run ./cmd/benchdiff -baseline BENCH_PR2.json -current BENCH_PR3.json
//	       [-max-regress 0.35] [-exempt '^parallel_']
//
// Rules, applied to every benchmark name present in the baseline:
//
//   - ns/op: fail when current > baseline × (1 + max-regress);
//   - allocs/op: fail on any increase — the zero-allocation hot path is a
//     hard invariant, not a soft budget;
//   - a baseline benchmark missing from the current run fails, so a
//     benchmark cannot silently vanish from the gate (delete it from the
//     committed baseline deliberately instead);
//   - names matching -exempt (default ^parallel_) are reported but not
//     gated: throughput benchmarks depend on the host's core count, which
//     differs between the machine that committed the baseline and the CI
//     runner.
//
// Both files may use either trajectory schema (run or comparison); a
// comparison contributes its "after" side. See internal/benchfmt.
//
// Caveat: the ns/op gate compares absolute timings across machines — the
// committed baseline's host and the CI runner differ in CPU model and
// shared-runner noise. The 35% default absorbs typical variance; if a
// fleet's runners drift further, loosen it via BENCH_MAX_REGRESS in the
// Makefile (the allocs/op gate is machine-independent and stays strict)
// or refresh the committed baseline from a representative runner.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"olgapro/internal/benchfmt"
)

func main() {
	baseline := flag.String("baseline", "", "committed baseline BENCH_*.json (required)")
	current := flag.String("current", "", "fresh bench run to gate (required)")
	maxRegress := flag.Float64("max-regress", 0.35, "allowed fractional ns/op regression")
	exempt := flag.String("exempt", "^parallel_", "regexp of benchmark names reported but not gated")
	flag.Parse()

	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -current are required")
		os.Exit(2)
	}
	exemptRe, err := regexp.Compile(*exempt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad -exempt: %v\n", err)
		os.Exit(2)
	}
	base, err := benchfmt.ReadRun(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := benchfmt.ReadRun(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	curBy := cur.ByName()
	baseBy := base.ByName()
	failures := 0
	fmt.Printf("benchdiff: %s (baseline) vs %s  [max ns/op regression %.0f%%]\n",
		*baseline, *current, *maxRegress*100)
	fmt.Printf("%-26s %14s %14s %8s %9s %9s  %s\n",
		"benchmark", "base ns/op", "cur ns/op", "Δns", "base a/op", "cur a/op", "verdict")
	for _, b := range base.Results {
		name := b.Name
		exempted := exemptRe.MatchString(name)
		c, ok := curBy[name]
		if !ok {
			verdict, fail := "FAIL (missing from current run)", 1
			if exempted {
				verdict, fail = "exempt (missing)", 0
			}
			fmt.Printf("%-26s %14.0f %14s %8s %9d %9s  %s\n",
				name, b.NsPerOp, "-", "-", b.AllocsPerOp, "-", verdict)
			failures += fail
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = c.NsPerOp/b.NsPerOp - 1
		}
		verdict := "ok"
		switch {
		case exempted:
			verdict = "exempt"
		case c.NsPerOp > b.NsPerOp*(1+*maxRegress):
			verdict = fmt.Sprintf("FAIL (ns/op +%.0f%% > %.0f%%)", delta*100, *maxRegress*100)
			failures++
		case c.AllocsPerOp > b.AllocsPerOp:
			verdict = fmt.Sprintf("FAIL (allocs/op %d > %d)", c.AllocsPerOp, b.AllocsPerOp)
			failures++
		}
		fmt.Printf("%-26s %14.0f %14.0f %7.0f%% %9d %9d  %s\n",
			name, b.NsPerOp, c.NsPerOp, delta*100, b.AllocsPerOp, c.AllocsPerOp, verdict)
	}
	for _, c := range cur.Results {
		if _, ok := baseBy[c.Name]; !ok {
			fmt.Printf("%-26s %14s %14.0f %8s %9s %9d  new (not gated)\n",
				c.Name, "-", c.NsPerOp, "-", "-", c.AllocsPerOp)
		}
	}
	if failures > 0 {
		fmt.Printf("benchdiff: FAIL — %d regression(s); rerun `make bench-diff` locally, "+
			"or update the committed baseline if the regression is intended\n", failures)
		os.Exit(1)
	}
	fmt.Println("benchdiff: PASS")
}
