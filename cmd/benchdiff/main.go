// Command benchdiff is the CI benchmark-regression gate: it compares a
// fresh cmd/bench run against a committed BENCH_*.json baseline and exits 1
// when a hot-path benchmark regressed.
//
// Usage:
//
//	go run ./cmd/benchdiff -baseline BENCH_PR2.json -current BENCH_PR3.json
//	       [-max-regress 0.35] [-exempt '^parallel_']
//
// Rules, applied to every benchmark name present in the baseline:
//
//   - ns/op: fail when current > baseline × (1 + max-regress);
//   - allocs/op: fail on any increase beyond ⌊base × alloc-slack⌋ (default
//     0.5%), which is zero — the original hard gate — for every benchmark
//     with fewer than 200 baseline allocs/op: the zero-allocation hot-path
//     invariant stays strict, while multi-second single-iteration
//     benchmarks absorb the handful of background runtime allocations that
//     vary with process composition;
//   - a baseline benchmark missing from the current run fails, so a
//     benchmark cannot silently vanish from the gate (delete it from the
//     committed baseline deliberately instead);
//   - names matching -exempt (default ^(parallel|server|fleet)_) are
//     reported but not gated: throughput and replication-lag benchmarks
//     depend on the host's core count, scheduler, and network stack, which
//     differ between the machine that committed the baseline and the CI
//     runner;
//   - benchmarks present in the current run but missing from the baseline
//     are listed as "new (not gated)" and summarized, so additions (e.g.
//     the BENCH_PR4 tuning_pick_* pair) are visible in CI output rather
//     than silently ignored.
//
// The comparison rules live in benchfmt.Diff (unit-tested); this command is
// only the CLI shell around them.
//
// Both files may use either trajectory schema (run or comparison); a
// comparison contributes its "after" side. See internal/benchfmt.
//
// Caveat: the ns/op gate compares absolute timings across machines — the
// committed baseline's host and the CI runner differ in CPU model and
// shared-runner noise. The 35% default absorbs typical variance; if a
// fleet's runners drift further, loosen it via BENCH_MAX_REGRESS in the
// Makefile (the allocs/op gate is machine-independent and stays strict)
// or refresh the committed baseline from a representative runner.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"

	"olgapro/internal/benchfmt"
)

func main() {
	baseline := flag.String("baseline", "", "committed baseline BENCH_*.json (required)")
	current := flag.String("current", "", "fresh bench run to gate (required)")
	maxRegress := flag.Float64("max-regress", 0.35, "allowed fractional ns/op regression")
	allocSlack := flag.Float64("alloc-slack", 0.005, "allowed fractional allocs/op increase, floored per benchmark (0 for baselines < 1/slack, keeping low-count gates strict)")
	exempt := flag.String("exempt", "^(parallel|server|fleet)_", "regexp of benchmark names reported but not gated")
	flag.Parse()

	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -current are required")
		os.Exit(2)
	}
	exemptRe, err := regexp.Compile(*exempt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad -exempt: %v\n", err)
		os.Exit(2)
	}
	base, err := benchfmt.ReadRun(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := benchfmt.ReadRun(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	entries, failures, added := benchfmt.Diff(base, cur, benchfmt.DiffOptions{
		MaxRegress: *maxRegress,
		AllocSlack: *allocSlack,
		Exempt:     exemptRe,
	})
	fmt.Printf("benchdiff: %s (baseline) vs %s  [max ns/op regression %.0f%%]\n",
		*baseline, *current, *maxRegress*100)
	fmt.Printf("%-26s %14s %14s %8s %9s %9s  %s\n",
		"benchmark", "base ns/op", "cur ns/op", "Δns", "base a/op", "cur a/op", "verdict")
	var newNames []string
	for _, e := range entries {
		bNs, bAllocs := "-", "-"
		if e.Base != nil {
			bNs = fmt.Sprintf("%.0f", e.Base.NsPerOp)
			bAllocs = fmt.Sprintf("%d", e.Base.AllocsPerOp)
		}
		cNs, cAllocs, delta := "-", "-", "-"
		if e.Cur != nil {
			cNs = fmt.Sprintf("%.0f", e.Cur.NsPerOp)
			cAllocs = fmt.Sprintf("%d", e.Cur.AllocsPerOp)
		}
		if e.Base != nil && e.Cur != nil {
			delta = fmt.Sprintf("%.0f%%", e.Delta*100)
		}
		fmt.Printf("%-26s %14s %14s %8s %9s %9s  %s\n",
			e.Name, bNs, cNs, delta, bAllocs, cAllocs, e.Verdict)
		if e.New {
			newNames = append(newNames, e.Name)
		}
	}
	if added > 0 {
		fmt.Printf("benchdiff: %d new benchmark(s) not in baseline: %s — gated once the baseline is refreshed\n",
			added, strings.Join(newNames, ", "))
	}
	if failures > 0 {
		fmt.Printf("benchdiff: FAIL — %d regression(s); rerun `make bench-diff` locally, "+
			"or update the committed baseline if the regression is intended\n", failures)
		os.Exit(1)
	}
	fmt.Println("benchdiff: PASS")
}
