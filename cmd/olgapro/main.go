// Command olgapro runs the paper's motivating queries over a synthetic (or
// CSV-loaded) SDSS-like catalog, evaluating astrophysics UDFs on uncertain
// attributes with either the OLGAPRO GP engine or Monte-Carlo simulation.
//
// Query Q1 (paper §1):
//
//	SELECT G.objID, GalAge(G.redshift) FROM Galaxy G
//
// Query Q2-style (distance predicate with TEP filtering):
//
//	SELECT G1.objID, G2.objID, ComoveVol(G1.redshift, G2.redshift, AREA)
//	FROM Galaxy G1, Galaxy G2
//	WHERE Distance(G1.pos, G2.pos) ∈ [l, u]
//
// Usage:
//
//	olgapro -query q1|q2 [-engine gp|mc] [-n galaxies] [-eps e] [-catalog file.csv]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"olgapro/internal/astro"
	"olgapro/internal/core"
	"olgapro/internal/kernel"
	"olgapro/internal/mc"
	"olgapro/internal/query"
	"olgapro/internal/sdss"
)

func main() {
	queryName := flag.String("query", "q1", "query to run: q1 or q2")
	engine := flag.String("engine", "gp", "evaluation engine: gp or mc")
	n := flag.Int("n", 40, "catalog size when generating")
	eps := flag.Float64("eps", 0.1, "accuracy requirement ε")
	delta := flag.Float64("delta", 0.05, "confidence parameter δ")
	seed := flag.Int64("seed", 1, "random seed")
	catalogPath := flag.String("catalog", "", "load catalog CSV instead of generating")
	limit := flag.Int("limit", 10, "print at most this many result tuples")
	flag.Parse()

	if err := run(*queryName, *engine, *n, *eps, *delta, *seed, *catalogPath, *limit); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(queryName, engine string, n int, eps, delta float64, seed int64, catalogPath string, limit int) error {
	var cat *sdss.Catalog
	if catalogPath != "" {
		f, err := os.Open(catalogPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if cat, err = sdss.ReadCSV(f); err != nil {
			return err
		}
	} else {
		cat = sdss.Generate(sdss.GenerateConfig{N: n, Seed: seed})
	}
	rel := make([]*query.Tuple, len(cat.Galaxies))
	for i, g := range cat.Galaxies {
		rel[i] = query.GalaxyTuple(g.ObjID, g.RA, g.Dec, g.RAErr, g.DecErr, g.Redshift, g.RedshiftErr)
	}
	rng := rand.New(rand.NewSource(seed))
	cosmo := astro.Default()

	mkEngine := func(f interface {
		Dim() int
		Eval([]float64) float64
	}, kern kernel.Kernel, pred *mc.Predicate) (query.Engine, error) {
		switch engine {
		case "mc":
			return query.MCEngine{F: f, Cfg: mc.Config{
				Eps: eps, Delta: delta, Metric: mc.MetricDiscrepancy, Predicate: pred,
			}}, nil
		case "gp":
			ev, err := core.NewEvaluator(f, core.Config{
				Eps: eps, Delta: delta, Kernel: kern, Predicate: pred,
			})
			if err != nil {
				return nil, err
			}
			return query.EvaluatorEngine{E: ev}, nil
		default:
			return nil, fmt.Errorf("unknown engine %q (want gp or mc)", engine)
		}
	}

	start := time.Now()
	switch queryName {
	case "q1":
		eng, err := mkEngine(astro.GalAgeFunc(cosmo), kernel.NewSqExp(4, 0.3), nil)
		if err != nil {
			return err
		}
		apply := &query.ApplyUDF{
			In:     query.NewScan(rel),
			Inputs: []string{"redshift"},
			Out:    "galAge",
			Engine: eng,
			Rng:    rng,
		}
		results, err := query.Drain(apply)
		if err != nil {
			return err
		}
		fmt.Printf("Q1: SELECT objID, GalAge(redshift) FROM Galaxy  [engine=%s ε=%g]\n", engine, eps)
		printResults(results, []string{"objID", "galAge"}, limit)
	case "q2":
		// Self-join on distinct pairs; distance predicate with TEP filtering,
		// then comoving volume between the pair's redshifts.
		pairs, err := query.Drain(query.NewCrossJoin(rel[:min(len(rel), 12)], "g1.", rel[:min(len(rel), 12)], "g2.", true))
		if err != nil {
			return err
		}
		distUDF := astro.AngDistFunc4()
		distEng, err := mkEngine(distUDF, kernel.NewSqExp(20, 15), &mc.Predicate{A: 0, B: 25, Theta: 0.2})
		if err != nil {
			return err
		}
		withDist := &query.ApplyUDF{
			In:     query.NewScan(pairs),
			Inputs: []string{"g1.ra", "g1.dec", "g2.ra", "g2.dec"},
			Out:    "distance",
			Engine: distEng,
			Rng:    rng,
		}
		volEng, err := mkEngine(astro.ComoveVolFunc(cosmo, 100), kernel.NewSqExp(5e7, 0.3), nil)
		if err != nil {
			return err
		}
		withVol := &query.ApplyUDF{
			In:     withDist,
			Inputs: []string{"g1.redshift", "g2.redshift"},
			Out:    "comoveVol",
			Engine: volEng,
			Rng:    rng,
		}
		results, err := query.Drain(withVol)
		if err != nil {
			return err
		}
		fmt.Printf("Q2: SELECT g1.objID, g2.objID, ComoveVol(...) WHERE Distance(pos) ∈ [0,25]  [engine=%s ε=%g]\n", engine, eps)
		fmt.Printf("pairs examined: %d, dropped by TEP filter: %d\n", len(pairs), withDist.Dropped)
		printResults(results, []string{"g1.objID", "g2.objID", "distance", "comoveVol"}, limit)
	default:
		return fmt.Errorf("unknown query %q (want q1 or q2)", queryName)
	}
	fmt.Printf("elapsed: %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func printResults(results []*query.Tuple, cols []string, limit int) {
	for i, t := range results {
		if i >= limit {
			fmt.Printf("... (%d more)\n", len(results)-limit)
			break
		}
		for j, c := range cols {
			if j > 0 {
				fmt.Print("  ")
			}
			v, err := t.Get(c)
			if err != nil {
				fmt.Printf("%s=?", c)
				continue
			}
			if v.Kind == query.KindResult && v.R != nil {
				fmt.Printf("%s=[p05 %.4g, median %.4g, p95 %.4g]", c,
					v.R.Quantile(0.05), v.R.Quantile(0.5), v.R.Quantile(0.95))
			} else {
				fmt.Printf("%s=%s", c, v)
			}
		}
		fmt.Println()
	}
	fmt.Printf("%d result tuples\n", len(results))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
