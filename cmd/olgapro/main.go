// Command olgapro runs the paper's motivating queries over a synthetic (or
// CSV-loaded) SDSS-like catalog, evaluating astrophysics UDFs on uncertain
// attributes with either the OLGAPRO GP engine or Monte-Carlo simulation.
//
// Query Q1 (paper §1):
//
//	SELECT G.objID, GalAge(G.redshift) FROM Galaxy G
//
// Query Q2-style (distance predicate with TEP filtering):
//
//	SELECT G1.objID, G2.objID, ComoveVol(G1.redshift, G2.redshift, AREA)
//	FROM Galaxy G1, Galaxy G2
//	WHERE Distance(G1.pos, G2.pos) ∈ [l, u]
//
// With -workers N ≠ 1 the UDF-application stages run on the parallel
// pipelined executor (internal/exec): a GP engine is warmed on a few
// tuples, frozen, and cloned per worker; a Monte-Carlo engine, being
// stateless, is simply replicated. Per-tuple RNG seeding keeps the output
// bit-identical across worker counts for a fixed -seed.
//
// Usage:
//
//	olgapro -query q1|q2 [-engine gp|mc] [-n galaxies] [-eps e]
//	        [-workers n] [-catalog file.csv]
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"runtime"
	"time"

	"olgapro/internal/astro"
	"olgapro/internal/core"
	"olgapro/internal/exec"
	"olgapro/internal/kernel"
	"olgapro/internal/mc"
	"olgapro/internal/query"
	"olgapro/internal/sdss"
	"olgapro/internal/server/wire"
)

func main() {
	queryName := flag.String("query", "q1", "query to run: q1 or q2")
	engine := flag.String("engine", "gp", "evaluation engine: gp or mc")
	n := flag.Int("n", 40, "catalog size when generating")
	eps := flag.Float64("eps", 0.1, "accuracy requirement ε")
	delta := flag.Float64("delta", 0.05, "confidence parameter δ")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 1, "UDF-application workers (1 = serial; ≤ 0 = GOMAXPROCS)")
	catalogPath := flag.String("catalog", "", "load catalog CSV instead of generating")
	limit := flag.Int("limit", 10, "print at most this many result tuples")
	sparseBudget := flag.Int("sparse-budget", 0, "GP inducing-point budget (0 = exact model; ≥ 2 = budgeted sparse)")
	sparseInflate := flag.Float64("sparse-inflate", 0, "sparse predictive-sd inflation (0 = model default 1.1)")
	flag.Parse()

	if err := run(*queryName, *engine, *n, *eps, *delta, *seed, *workers, *catalogPath, *limit, *sparseBudget, *sparseInflate); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(queryName, engine string, n int, eps, delta float64, seed int64, workers int, catalogPath string, limit, sparseBudget int, sparseInflate float64) error {
	var cat *sdss.Catalog
	if catalogPath != "" {
		f, err := os.Open(catalogPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if cat, err = sdss.ReadCSV(f); err != nil {
			return err
		}
	} else {
		cat = sdss.Generate(sdss.GenerateConfig{N: n, Seed: seed})
	}
	// Catalog → uncertain relation through the shared wire codec, the same
	// construction the network service applies.
	rel := wire.GalaxyRelation(cat)
	rng := rand.New(rand.NewSource(seed))
	cosmo := astro.Default()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// builtEngine pairs the opaque query engine with the GP evaluator
	// behind it (nil for MC), which poolFor needs for warm-and-freeze.
	type builtEngine struct {
		eng query.Engine
		ev  *core.Evaluator
	}
	mkEngine := func(f interface {
		Dim() int
		Eval([]float64) float64
	}, kern kernel.Kernel, pred *mc.Predicate) (builtEngine, error) {
		switch engine {
		case "mc":
			return builtEngine{eng: query.NewMCEngine(f, mc.Config{
				Eps: eps, Delta: delta, Metric: mc.MetricDiscrepancy, Predicate: pred,
			})}, nil
		case "gp":
			ev, err := core.NewEvaluator(f, core.Config{
				Eps: eps, Delta: delta, Kernel: kern, Predicate: pred,
				SparseBudget: sparseBudget, SparseInflate: sparseInflate,
			})
			if err != nil {
				return builtEngine{}, err
			}
			return builtEngine{eng: query.NewEvaluatorEngine(ev), ev: ev}, nil
		default:
			return builtEngine{}, fmt.Errorf("unknown engine %q (want gp or mc)", engine)
		}
	}

	// poolFor turns one engine into a worker pool: a GP engine is warmed on
	// the given tuples, then frozen and cloned per worker; a stateless MC
	// engine is replicated as-is.
	poolFor := func(be builtEngine, warm []*query.Tuple, inputs []string) (*exec.Pool, error) {
		if be.ev != nil {
			for _, t := range warm {
				input, err := query.InputVectorFor(t, inputs)
				if err != nil {
					return nil, err
				}
				if _, err := be.ev.Eval(input, rng); err != nil {
					return nil, fmt.Errorf("warm-up: %w", err)
				}
			}
			return exec.NewEvaluatorPool(be.ev, workers)
		}
		engines := make([]query.Engine, workers)
		for i := range engines {
			engines[i] = be.eng
		}
		return exec.NewPool(engines...)
	}

	// applyStage builds the UDF-application operator: the classic serial
	// ApplyUDF at -workers 1, the parallel executor otherwise.
	applyStage := func(in query.Iterator, inputs []string, out string, be builtEngine,
		pred *mc.Predicate, warm []*query.Tuple) (query.Iterator, func() int, error) {
		// With nothing to warm a GP pool on (empty relation), the serial
		// path handles the stream — it drains to zero results where a
		// frozen pool could not even be built.
		if workers == 1 || len(warm) == 0 {
			a := &query.ApplyUDF{In: in, Inputs: inputs, Out: out, Engine: be.eng, Rng: rng, Predicate: pred}
			return a, func() int { return a.Dropped }, nil
		}
		pool, err := poolFor(be, warm, inputs)
		if err != nil {
			return nil, nil, err
		}
		// Mix the stage name into the seed: chained stages must not hand
		// tuple #k the same RNG stream, or their sampling errors correlate.
		h := fnv.New64a()
		h.Write([]byte(out))
		pe := pool.Apply(in, inputs, out, exec.Options{Seed: seed ^ int64(h.Sum64()), Predicate: pred})
		return pe, func() int { return pe.Dropped }, nil
	}

	// Pooled engines are frozen before the parallel scan, so give the model
	// enough warm-up tuples to be useful — with a predicate, a barely
	// trained frozen model filters nothing (wide envelopes keep every TEP
	// upper bound above θ; conservative, never wrong, just slower).
	warmCount := func(total int) int { return min(total, 12) }

	start := time.Now()
	switch queryName {
	case "q1":
		eng, err := mkEngine(astro.GalAgeFunc(cosmo), kernel.NewSqExp(4, 0.3), nil)
		if err != nil {
			return err
		}
		inputs := []string{"redshift"}
		apply, _, err := applyStage(query.NewScan(rel), inputs, "galAge", eng, nil, rel[:warmCount(len(rel))])
		if err != nil {
			return err
		}
		results, err := query.Drain(apply)
		if err != nil {
			return err
		}
		fmt.Printf("Q1: SELECT objID, GalAge(redshift) FROM Galaxy  [engine=%s ε=%g workers=%d]\n", engine, eps, workers)
		printResults(results, []string{"objID", "galAge"}, limit)
	case "q2":
		// Self-join on distinct pairs; distance predicate with TEP filtering,
		// then comoving volume between the pair's redshifts.
		pairs, err := query.Drain(query.NewCrossJoin(rel[:min(len(rel), 12)], "g1.", rel[:min(len(rel), 12)], "g2.", true))
		if err != nil {
			return err
		}
		distUDF := astro.AngDistFunc4()
		distEng, err := mkEngine(distUDF, kernel.NewSqExp(20, 15), &mc.Predicate{A: 0, B: 25, Theta: 0.2})
		if err != nil {
			return err
		}
		distInputs := []string{"g1.ra", "g1.dec", "g2.ra", "g2.dec"}
		withDist, distDropped, err := applyStage(query.NewScan(pairs), distInputs, "distance",
			distEng, nil, pairs[:warmCount(len(pairs))])
		if err != nil {
			return err
		}
		volEng, err := mkEngine(astro.ComoveVolFunc(cosmo, 100), kernel.NewSqExp(5e7, 0.3), nil)
		if err != nil {
			return err
		}
		volInputs := []string{"g1.redshift", "g2.redshift"}
		withVol, _, err := applyStage(withDist, volInputs, "comoveVol",
			volEng, nil, pairs[:warmCount(len(pairs))])
		if err != nil {
			return err
		}
		results, err := query.Drain(withVol)
		if err != nil {
			return err
		}
		fmt.Printf("Q2: SELECT g1.objID, g2.objID, ComoveVol(...) WHERE Distance(pos) ∈ [0,25]  [engine=%s ε=%g workers=%d]\n", engine, eps, workers)
		fmt.Printf("pairs examined: %d, dropped by TEP filter: %d\n", len(pairs), distDropped())
		printResults(results, []string{"g1.objID", "g2.objID", "distance", "comoveVol"}, limit)
	default:
		return fmt.Errorf("unknown query %q (want q1 or q2)", queryName)
	}
	fmt.Printf("elapsed: %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func printResults(results []*query.Tuple, cols []string, limit int) {
	for i, t := range results {
		if i >= limit {
			fmt.Printf("... (%d more)\n", len(results)-limit)
			break
		}
		for j, c := range cols {
			if j > 0 {
				fmt.Print("  ")
			}
			v, err := t.Get(c)
			if err != nil {
				fmt.Printf("%s=?", c)
				continue
			}
			if v.Kind == query.KindResult && v.R != nil {
				fmt.Printf("%s=[p05 %.4g, median %.4g, p95 %.4g]", c,
					v.R.Quantile(0.05), v.R.Quantile(0.5), v.R.Quantile(0.95))
			} else {
				fmt.Printf("%s=%s", c, v)
			}
		}
		fmt.Println()
	}
	fmt.Printf("%d result tuples\n", len(results))
}
