// Command experiments regenerates every table and figure of the paper's
// evaluation (§6, Figures 5(a)–(l) and 6(a)–(d), plus the §6.4 function
// table) and prints them as aligned text tables.
//
// Usage:
//
//	experiments [-quick] [-run name] [-inputs n] [-seed s] [-list]
//
// With no flags the default scale runs everything (minutes). -quick trims
// the workload for a fast look; -run executes a single experiment by name
// (see -list).
package main

import (
	"flag"
	"fmt"
	"os"

	"olgapro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale")
	runName := flag.String("run", "", "run a single experiment by name")
	inputs := flag.Int("inputs", 0, "override the number of inputs per configuration")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "parallel-executor workers for the throughput experiment (0 = GOMAXPROCS)")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", e.Name, e.Figures)
		}
		return
	}

	sc := bench.DefaultScale()
	if *quick {
		sc = bench.QuickScale()
	}
	sc.Seed = *seed
	sc.Workers = *workers
	if *inputs > 0 {
		sc.Inputs = *inputs
	}

	if *runName != "" {
		e, err := bench.Lookup(*runName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tables, err := e.Run(sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Render(os.Stdout)
		}
		return
	}

	if err := bench.RunAll(os.Stdout, sc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
