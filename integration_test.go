package olgapro

// End-to-end tests exercising the public API exactly as a downstream user
// would: evaluate UDFs on uncertain inputs with both engines, compare to
// analytic truth, run queries, and use the hybrid chooser.

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestPublicQuickstartFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// A "black-box" UDF: smooth nonlinear transform.
	f := Func(1, func(x []float64) float64 { return math.Exp(-x[0] / 4) })
	ev, err := NewEvaluator(f, Config{Eps: 0.1, Delta: 0.05, Kernel: SqExpKernel(0.5, 2)})
	if err != nil {
		t.Fatal(err)
	}
	input := NormalInput([]float64{4}, 0.5)
	out, err := ev.Eval(input, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dist == nil {
		t.Fatal("no distribution")
	}
	// exp(−N(4,0.25)/4) is lognormal: median exp(−1).
	if got, want := out.Dist.Quantile(0.5), math.Exp(-1); math.Abs(got-want) > 0.02 {
		t.Fatalf("median %g, want ≈ %g", got, want)
	}
	if out.Bound <= 0 || out.Bound > 1 {
		t.Fatalf("bound %g out of range", out.Bound)
	}
}

func TestPublicMCAgainstAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	identity := Func(1, func(x []float64) float64 { return x[0] })
	input := Input(Normal{Mu: -2, Sigma: 1.5})
	res, err := EvaluateMC(identity, input, MCConfig{Eps: 0.05, Delta: 0.05, Metric: MetricKS}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != MCSampleSize(0.05, 0.05, MetricKS) {
		t.Fatalf("samples %d", res.Samples)
	}
	if got := res.Dist.Mean(); math.Abs(got-(-2)) > 0.1 {
		t.Fatalf("mean %g, want −2", got)
	}
}

// GP and MC engines must agree on the same input distribution.
func TestEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := Func(2, func(x []float64) float64 { return x[0]*x[0] + x[1] })
	input := NormalInput([]float64{3, 1}, 0.3)

	ev, err := NewEvaluator(f, Config{Kernel: SqExpKernel(3, 1.5)})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the emulator, then compare distributions.
	for i := 0; i < 5; i++ {
		if _, err := ev.Eval(input, rng); err != nil {
			t.Fatal(err)
		}
	}
	gpOut, err := ev.Eval(input, rng)
	if err != nil {
		t.Fatal(err)
	}
	mcOut, err := EvaluateMC(f, input, MCConfig{Eps: 0.05, Delta: 0.05, Metric: MetricDiscrepancy}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d := Discrepancy(gpOut.Dist, mcOut.Dist); d > 0.12 {
		t.Fatalf("engines disagree: discrepancy %g", d)
	}
	if d := KS(gpOut.Dist, mcOut.Dist); d > 0.12 {
		t.Fatalf("engines disagree: KS %g", d)
	}
}

func TestPublicMetricsRelationship(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 0.3
	}
	ea, eb := NewECDF(a), NewECDF(b)
	ks := KS(ea, eb)
	d := Discrepancy(ea, eb)
	dl := DiscrepancyLambda(ea, eb, 0.5)
	if d < ks || d > 2*ks+1e-12 {
		t.Fatalf("KS=%g D=%g violates KS ≤ D ≤ 2KS", ks, d)
	}
	if dl > d+1e-12 {
		t.Fatalf("Dλ=%g exceeds D=%g", dl, d)
	}
}

func TestPublicAstroUDFs(t *testing.T) {
	c := DefaultCosmology()
	age := GalAgeUDF(c)
	if age.Dim() != 1 {
		t.Fatal("GalAge dim")
	}
	if got := age.Eval([]float64{0}); math.Abs(got-13.47) > 0.05 {
		t.Fatalf("age of universe %g", got)
	}
	vol := ComoveVolUDF(c, 100)
	if vol.Dim() != 2 || vol.Eval([]float64{0.1, 0.3}) <= 0 {
		t.Fatal("ComoveVol")
	}
	ad := AngDistUDF(180, 30)
	if ad.Dim() != 2 || ad.Eval([]float64{180, 30}) != 0 {
		t.Fatal("AngDist")
	}
}

func TestPublicQueryQ1(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cat := GenerateCatalog(10, 7)
	rel := make([]*Tuple, len(cat.Galaxies))
	for i, g := range cat.Galaxies {
		rel[i] = GalaxyTuple(g.ObjID, g.RA, g.Dec, g.RAErr, g.DecErr, g.Redshift, g.RedshiftErr)
	}
	ev, err := NewEvaluator(GalAgeUDF(DefaultCosmology()), Config{Kernel: SqExpKernel(4, 0.3)})
	if err != nil {
		t.Fatal(err)
	}
	apply := &ApplyUDFOp{
		In:     NewScan(rel),
		Inputs: []string{"redshift"},
		Out:    "age",
		Engine: GPEngine(ev),
		Rng:    rng,
	}
	results, err := Drain(apply)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("%d results", len(results))
	}
	for _, tp := range results {
		v, err := tp.Get("age")
		if err != nil {
			t.Fatal(err)
		}
		// Galaxy ages must be between ~5 and ~13.5 Gyr for z ≤ 1.
		if med := v.R.Quantile(0.5); med < 5 || med > 14 {
			t.Fatalf("implausible age %g", med)
		}
	}
}

func TestPublicHybrid(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := Func(1, func(x []float64) float64 { return math.Sin(x[0]) })
	h, err := NewHybrid(f, HybridConfig{
		Config:            Config{Kernel: SqExpKernel(1, 1.5)},
		CalibrationInputs: 3,
		EvalTime:          50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		out, eng, err := h.Eval(NormalInput([]float64{float64(i)}, 0.4), rng)
		if err != nil {
			t.Fatal(err)
		}
		if out == nil {
			t.Fatalf("nil output from %s", eng)
		}
	}
	if choice, decided := h.Choice(); !decided || choice != EngineGP {
		t.Fatalf("expensive UDF should pick GP, got %v (decided %v)", choice, decided)
	}
}

func TestPublicMultiOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := MultiFunc(1, 2, func(x []float64, out []float64) []float64 {
		if cap(out) < 2 {
			out = make([]float64, 2)
		}
		out = out[:2]
		out[0] = math.Sin(x[0])
		out[1] = math.Cos(x[0])
		return out
	})
	m, err := NewMultiEvaluator(f, Config{Kernel: SqExpKernel(1, 1.5)})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := m.Eval(NormalInput([]float64{1.0}, 0.3), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("%d outputs", len(outs))
	}
	if med := outs[0].Dist.Quantile(0.5); math.Abs(med-math.Sin(1)) > 0.1 {
		t.Fatalf("sin median %g", med)
	}
	if med := outs[1].Dist.Quantile(0.5); math.Abs(med-math.Cos(1)) > 0.1 {
		t.Fatalf("cos median %g", med)
	}
}

func TestPublicSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := Func(1, func(x []float64) float64 { return math.Sin(x[0]) })
	ev, err := NewEvaluator(f, Config{Kernel: SqExpKernel(1, 1.5)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := ev.Eval(NormalInput([]float64{float64(2 * i)}, 0.4), rng); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := ev.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadEvaluator(f, Config{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.GP().Len() != ev.GP().Len() {
		t.Fatalf("restored %d points, want %d", restored.GP().Len(), ev.GP().Len())
	}
	out, err := restored.Eval(NormalInput([]float64{3}, 0.4), rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Dist.Quantile(0.5)-math.Sin(3)) > 0.1 {
		t.Fatalf("restored median %g", out.Dist.Quantile(0.5))
	}
}

func TestPublicARDKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Only dimension 0 matters; ARD should work out of the box.
	f := Func(3, func(x []float64) float64 { return math.Sin(x[0]) })
	ev, err := NewEvaluator(f, Config{
		Kernel: SqExpARDKernel(1, []float64{1.5, 1.5, 1.5}),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ev.Eval(NormalInput([]float64{1, 5, 5}, 0.3), rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Dist.Quantile(0.5)-math.Sin(1)) > 0.15 {
		t.Fatalf("ARD median %g, want ≈ %g", out.Dist.Quantile(0.5), math.Sin(1))
	}
}

// TestPublicParallelEngine exercises the parallel executor exactly as a
// downstream user would: warm an evaluator, clone it into a pool, run a
// query stage at two worker counts, and check the streams agree exactly.
func TestPublicParallelEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := Func(1, func(x []float64) float64 { return math.Exp(-x[0] / 4) })
	ev, err := NewEvaluator(f, Config{Kernel: SqExpKernel(0.5, 2), SampleOverride: 120})
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: the pool freezes the model, so train before cloning.
	for i := 0; i < 6; i++ {
		if _, err := ev.Eval(NormalInput([]float64{4}, 0.5), rng); err != nil {
			t.Fatal(err)
		}
	}
	rel := make([]*Tuple, 60)
	for i := range rel {
		rel[i] = GalaxyTuple(int64(i), 180, 0, 0.01, 0.01, 3.5+0.02*float64(i), 0.3)
	}
	var ref []*Tuple
	for _, workers := range []int{1, 3} {
		pool, err := NewParallelEngine(ev, workers)
		if err != nil {
			t.Fatal(err)
		}
		if pool.Workers() != workers {
			t.Fatalf("workers = %d", pool.Workers())
		}
		out, err := Drain(pool.Apply(NewScan(rel), []string{"redshift"}, "y", ParallelOptions{Seed: 5}))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(rel) {
			t.Fatalf("%d of %d tuples", len(out), len(rel))
		}
		if ref == nil {
			ref = out
			continue
		}
		for i := range out {
			a, b := ref[i].MustGet("y"), out[i].MustGet("y")
			if a.TEP != b.TEP || a.R.Mean() != b.R.Mean() || a.R.Len() != b.R.Len() {
				t.Fatalf("tuple %d differs between worker counts", i)
			}
		}
	}
}
