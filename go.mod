module olgapro

// Kept one release behind the newest stable so the CI build matrix
// (stable + oldstable) both satisfy the floor.
go 1.23
