module olgapro

go 1.24
